package engine

import (
	"strings"
	"testing"

	"scisparql/internal/array"
	"scisparql/internal/rdf"
	"scisparql/internal/sparql"
	"scisparql/internal/storage"
)

func TestNestedOptional(t *testing.T) {
	e := newEngine(t, foafData)
	res := query(t, e, prefixes+`
SELECT ?n ?m ?f WHERE {
  ?p foaf:name ?n .
  OPTIONAL {
    ?p foaf:knows ?q .
    OPTIONAL { ?q foaf:mbox ?m }
    ?q foaf:name ?f .
  }
} ORDER BY ?n ?f`)
	// Alice knows Bob (has mbox) and Daniel (no mbox); Bob knows Alice;
	// Cindy and Daniel know nobody.
	if res.Len() != 5 {
		t.Fatalf("rows %d: %v", res.Len(), res.Rows)
	}
	if res.Get(0, "f").(rdf.String).Val != "Bob" || res.Get(0, "m") == nil {
		t.Fatalf("%v", res.Rows[0])
	}
	if res.Get(1, "f").(rdf.String).Val != "Daniel" || res.Get(1, "m") != nil {
		t.Fatalf("%v", res.Rows[1])
	}
}

func TestOptionalFilterOnOuterVar(t *testing.T) {
	e := newEngine(t, foafData)
	// The optional's filter references the outer ?a: the optional part
	// matches only when age > 26.
	res := query(t, e, prefixes+`
SELECT ?n ?f WHERE {
  ?p foaf:name ?n ; ex:age ?a .
  OPTIONAL { ?p foaf:knows ?q . ?q foaf:name ?f FILTER (?a > 26) }
} ORDER BY ?n ?f`)
	for i := 0; i < res.Len(); i++ {
		n := res.Get(i, "n").(rdf.String).Val
		if n == "Bob" && res.Get(i, "f") != nil {
			t.Fatalf("Bob is 25; optional must not match: %v", res.Rows[i])
		}
		if n == "Alice" && res.Get(i, "f") == nil {
			t.Fatalf("Alice is 30; optional must match: %v", res.Rows[i])
		}
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	e := newEngine(t, `
@prefix ex: <http://ex/> .
ex:a ex:g 1 ; ex:v 2 . ex:b ex:g 1 ; ex:v 1 . ex:c ex:g 0 ; ex:v 9 .
`)
	res := query(t, e, `PREFIX ex: <http://ex/>
SELECT ?s WHERE { ?s ex:g ?g ; ex:v ?v } ORDER BY ?g DESC(?v)`)
	want := []string{"http://ex/a", "http://ex/b", "http://ex/c"}
	// g=0 first (c), then g=1 sorted by v desc (a then b)? No: ORDER BY
	// ?g ascending puts c first, then within g=1, v desc gives a(2), b(1).
	want = []string{"http://ex/c", "http://ex/a", "http://ex/b"}
	for i, w := range want {
		if res.Rows[i][0] != rdf.IRI(w) {
			t.Fatalf("row %d = %v, want %s", i, res.Rows[i][0], w)
		}
	}
}

func TestOffsetBeyondEnd(t *testing.T) {
	e := newEngine(t, foafData)
	res := query(t, e, prefixes+`SELECT ?p WHERE { ?p a foaf:Person } OFFSET 100`)
	if res.Len() != 0 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestPathBothEndpointsUnbound(t *testing.T) {
	e := newEngine(t, `
@prefix ex: <http://ex/> .
ex:a ex:next ex:b . ex:b ex:next ex:c .
`)
	res := query(t, e, `PREFIX ex: <http://ex/> SELECT ?x ?y WHERE { ?x ex:next+ ?y } ORDER BY ?x ?y`)
	// a->b, a->c, b->c.
	if res.Len() != 3 {
		t.Fatalf("%v", res.Rows)
	}
	res2 := query(t, e, `PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x ex:next? ?x }`)
	// Zero-length: every node pairs with itself (a, b, c).
	if res2.Len() != 3 {
		t.Fatalf("%v", res2.Rows)
	}
}

func TestPathUnderGraphClause(t *testing.T) {
	e := newEngine(t, "")
	g := e.Dataset.Named(rdf.IRI("http://ex/g"), true)
	g.Add(rdf.IRI("http://ex/a"), rdf.IRI("http://ex/n"), rdf.IRI("http://ex/b"))
	g.Add(rdf.IRI("http://ex/b"), rdf.IRI("http://ex/n"), rdf.IRI("http://ex/c"))
	res := query(t, e, `PREFIX ex: <http://ex/>
SELECT ?y WHERE { GRAPH <http://ex/g> { ex:a ex:n+ ?y } }`)
	if res.Len() != 2 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestConstructWithBlankTemplate(t *testing.T) {
	e := newEngine(t, foafData)
	res := query(t, e, prefixes+`
CONSTRUCT { ?p ex:contact [ ex:name ?n ] } WHERE { ?p foaf:name ?n }`)
	// 4 persons x 2 triples each; blank nodes fresh per solution.
	if res.Graph.Size() != 8 {
		t.Fatalf("size %d", res.Graph.Size())
	}
	blanks := map[string]bool{}
	res.Graph.MatchTerms(nil, rdf.IRI("http://ex/contact"), nil, func(_, _, o rdf.Term) bool {
		blanks[o.Key()] = true
		return true
	})
	if len(blanks) != 4 {
		t.Fatalf("blank objects %d, want 4 distinct", len(blanks))
	}
}

func TestDescribeVariable(t *testing.T) {
	e := newEngine(t, foafData)
	res := query(t, e, prefixes+`DESCRIBE ?p WHERE { ?p foaf:name "Cindy" }`)
	if res.Graph.Size() != 3 {
		t.Fatalf("size %d", res.Graph.Size())
	}
}

func TestValuesUndefJoins(t *testing.T) {
	e := newEngine(t, foafData)
	res := query(t, e, prefixes+`
SELECT ?n ?a WHERE {
  VALUES (?n ?a) { ("Alice" 30) ("Bob" UNDEF) }
  ?p foaf:name ?n ; ex:age ?a .
} ORDER BY ?n`)
	// Alice must match exactly; Bob's UNDEF age joins with his actual 25.
	if res.Len() != 2 || res.Get(1, "a") != rdf.Integer(25) {
		t.Fatalf("%v", res.Rows)
	}
}

func TestAggregateSkipsErrors(t *testing.T) {
	e := newEngine(t, `
@prefix ex: <http://ex/> .
ex:a ex:v 1 . ex:b ex:v "oops" . ex:c ex:v 3 .
`)
	res := query(t, e, `PREFIX ex: <http://ex/>
SELECT (COUNT(?v) AS ?n) (SUM(?v) AS ?s) WHERE { ?x ex:v ?v }`)
	// COUNT counts all bound values; SUM over a non-numeric is an error
	// -> register unbound.
	if res.Get(0, "n") != rdf.Integer(3) {
		t.Fatalf("count %v", res.Get(0, "n"))
	}
	if res.Get(0, "s") != nil {
		t.Fatalf("sum should be unbound: %v", res.Get(0, "s"))
	}
}

func TestAggregateInOrderBy(t *testing.T) {
	e := newEngine(t, `
@prefix ex: <http://ex/> .
ex:a ex:g "x" ; ex:v 1 . ex:b ex:g "x" ; ex:v 2 . ex:c ex:g "y" ; ex:v 10 .
`)
	res := query(t, e, `PREFIX ex: <http://ex/>
SELECT ?g WHERE { ?s ex:g ?g ; ex:v ?v } GROUP BY ?g ORDER BY DESC(SUM(?v))`)
	if res.Len() != 2 || res.Rows[0][0].(rdf.String).Val != "y" {
		t.Fatalf("%v", res.Rows)
	}
}

func TestUnknownFunctionSemantics(t *testing.T) {
	e := newEngine(t, foafData)
	// In a FILTER: expression error -> false -> zero rows (not a query
	// error).
	res := query(t, e, prefixes+`SELECT ?p WHERE { ?p a foaf:Person FILTER (nosuchfn(?p)) }`)
	if res.Len() != 0 {
		t.Fatalf("%v", res.Rows)
	}
	// In a projection: unbound cell.
	res2 := query(t, e, prefixes+`SELECT (nosuchfn(1) AS ?v) WHERE {} `)
	if res2.Get(0, "v") != nil {
		t.Fatalf("%v", res2.Rows)
	}
}

func TestBuiltinArityError(t *testing.T) {
	e := newEngine(t, "")
	res := query(t, e, `SELECT (strlen("a", "b") AS ?v) WHERE {}`)
	if res.Get(0, "v") != nil {
		t.Fatalf("%v", res.Rows)
	}
}

func TestTypePredicates(t *testing.T) {
	e := arrayGraph(t)
	res := query(t, e, `PREFIX ex: <http://ex/>
SELECT (isarray(?a) AS ?ia) (isnumeric(?a) AS ?in) (datatype(?a) AS ?dt)
WHERE { ex:s ex:data ?a }`)
	if res.Get(0, "ia") != rdf.Boolean(true) || res.Get(0, "in") != rdf.Boolean(false) {
		t.Fatalf("%v", res.Rows)
	}
	if res.Get(0, "dt") != rdf.SSDMArray {
		t.Fatalf("%v", res.Get(0, "dt"))
	}
}

func TestArrayShapeMismatchEquality(t *testing.T) {
	e := arrayGraph(t)
	res := query(t, e, `PREFIX ex: <http://ex/>
SELECT ?s WHERE { ?s ex:vec ?v FILTER (?v = array(10, 20)) }`)
	if res.Len() != 0 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestApplyBuiltinAndStringFuncRef(t *testing.T) {
	e := newEngine(t, "")
	update(t, e, `DEFINE FUNCTION plus(?a, ?b) AS ?a + ?b`)
	res := query(t, e, `SELECT (apply("plus", 20, 22) AS ?v) WHERE {}`)
	if res.Get(0, "v") != rdf.Integer(42) {
		t.Fatalf("%v", res.Rows)
	}
	// Closures can be applied too.
	res2 := query(t, e, `SELECT (apply(plus(40, _), 2) AS ?v) WHERE {}`)
	if res2.Get(0, "v") != rdf.Integer(42) {
		t.Fatalf("%v", res2.Rows)
	}
}

func TestMinusNoSharedVarsKeepsSolutions(t *testing.T) {
	e := newEngine(t, foafData)
	// MINUS with disjoint domains removes nothing (SPARQL semantics).
	res := query(t, e, prefixes+`
SELECT ?p WHERE { ?p a foaf:Person MINUS { ?x ex:age 25 } }`)
	if res.Len() != 4 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestBatchedPrefetchCorrectness(t *testing.T) {
	// Many scattered derefs across multiple solutions and arrays: the
	// batched APR path must produce the same values as resident arrays.
	mem := storage.NewMemory()
	e := newEngine(t, "")
	g := e.Dataset.Default
	for i := 1; i <= 3; i++ {
		data := make([]float64, 100)
		for j := range data {
			data[j] = float64(i*1000 + j)
		}
		a, _ := array.FromFloats(data, 100)
		id, err := mem.Store(a, 4)
		if err != nil {
			t.Fatal(err)
		}
		opened, err := mem.Open(id)
		if err != nil {
			t.Fatal(err)
		}
		g.Add(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/d"), rdf.NewArray(opened))
	}
	res := query(t, e, `PREFIX ex: <http://ex/>
SELECT (?a[7] + ?a[93] AS ?v) WHERE { ex:s ex:d ?a } ORDER BY ?v`)
	if res.Len() != 3 {
		t.Fatalf("%v", res.Rows)
	}
	if n, _ := rdf.Numeric(res.Rows[0][0]); n.Float() != 1006+1092 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestUpdateErrorPaths(t *testing.T) {
	e := newEngine(t, "")
	bad := []string{
		`PREFIX ex: <http://ex/> DELETE DATA { _:b ex:p 1 }`,
	}
	for _, src := range bad {
		st, err := sparql.ParseStatement(src)
		if err != nil {
			continue // parser may reject it instead
		}
		if _, err := e.Update(st); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestStrAndIRIBuiltins(t *testing.T) {
	e := newEngine(t, foafData)
	res := query(t, e, prefixes+`
SELECT (str(ex:alice) AS ?s) (iri(concat("http://ex/", "bob")) AS ?i) WHERE {}`)
	if res.Get(0, "s").(rdf.String).Val != "http://ex/alice" {
		t.Fatalf("%v", res.Rows)
	}
	if res.Get(0, "i") != rdf.IRI("http://ex/bob") {
		t.Fatalf("%v", res.Rows)
	}
}

func TestSubstrReplace(t *testing.T) {
	e := newEngine(t, "")
	res := query(t, e, `
SELECT (substr("scientific", 1, 3) AS ?a) (substr("sparql", 4) AS ?b)
       (replace("a-b-c", "-", "+") AS ?c) WHERE {}`)
	if res.Get(0, "a").(rdf.String).Val != "sci" {
		t.Fatalf("%v", res.Rows)
	}
	if res.Get(0, "b").(rdf.String).Val != "rql" {
		t.Fatalf("%v", res.Rows)
	}
	if res.Get(0, "c").(rdf.String).Val != "a+b+c" {
		t.Fatalf("%v", res.Rows)
	}
}

func TestLangAndStrlenFilters(t *testing.T) {
	e := newEngine(t, `
@prefix ex: <http://ex/> .
ex:s ex:label "hej"@sv , "hello"@en , "plain" .
`)
	res := query(t, e, `PREFIX ex: <http://ex/>
SELECT ?l WHERE { ex:s ex:label ?l FILTER (lang(?l) = "sv") }`)
	if res.Len() != 1 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestNumericBuiltinsPreserveInt(t *testing.T) {
	e := newEngine(t, "")
	res := query(t, e, `SELECT (abs(-5) AS ?a) (floor(2.7) AS ?f) (round(2.5) AS ?r) WHERE {}`)
	if res.Get(0, "a") != rdf.Integer(5) {
		t.Fatalf("%v", res.Get(0, "a"))
	}
	if res.Get(0, "f") != rdf.Float(2) || res.Get(0, "r") != rdf.Float(3) {
		t.Fatalf("%v", res.Rows)
	}
}

func TestGroupConcatDefaultSeparator(t *testing.T) {
	e := newEngine(t, `
@prefix ex: <http://ex/> .
ex:s ex:t "a" . ex:s ex:t "b" .
`)
	res := query(t, e, `PREFIX ex: <http://ex/>
SELECT (GROUP_CONCAT(?t) AS ?all) WHERE { ?s ex:t ?t }`)
	got := res.Get(0, "all").(rdf.String).Val
	if !strings.Contains(got, " ") {
		t.Fatalf("%q", got)
	}
}

func TestDatasetUpdateIntoNamedGraph(t *testing.T) {
	e := newEngine(t, "")
	st, err := sparql.ParseStatement(`
PREFIX ex: <http://ex/>
INSERT DATA { GRAPH ex:g { ex:s ex:p 1 } }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Update(st); err != nil {
		t.Fatal(err)
	}
	res := query(t, e, `SELECT ?v WHERE { GRAPH <http://ex/g> { ?s ?p ?v } }`)
	if res.Len() != 1 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestWithGraphModify(t *testing.T) {
	e := newEngine(t, "")
	update(t, e, `PREFIX ex: <http://ex/> INSERT DATA { GRAPH ex:g { ex:s ex:status "old" } }`)
	st, err := sparql.ParseStatement(`
PREFIX ex: <http://ex/>
WITH ex:g DELETE { ?s ex:status "old" } INSERT { ?s ex:status "new" } WHERE { ?s ex:status "old" }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Update(st); err != nil {
		t.Fatal(err)
	}
	res := query(t, e, `PREFIX ex: <http://ex/>
SELECT ?s WHERE { GRAPH ex:g { ?s ex:status "new" } }`)
	if res.Len() != 1 {
		t.Fatalf("%v", res.Rows)
	}
}
