package engine

import (
	"fmt"
	"math"
	"regexp"
	"strings"
	"time"

	"scisparql/internal/array"
	"scisparql/internal/rdf"
)

// builtin is one entry of the built-in function table: SPARQL 1.1
// built-ins plus the SciSPARQL array library (§4.1.3) and the
// second-order functions MAP and CONDENSE (§4.3.1).
type builtin struct {
	min, max int // max -1 = variadic
	fn       func(c *evalCtx, args []rdf.Term) (rdf.Term, error)
}

var builtins map[string]builtin

func init() {
	builtins = map[string]builtin{
		// --- term inspection / construction ---
		"str":       {1, 1, bStr},
		"lang":      {1, 1, bLang},
		"datatype":  {1, 1, bDatatype},
		"iri":       {1, 1, bIRI},
		"uri":       {1, 1, bIRI},
		"isiri":     {1, 1, bIsIRI},
		"isuri":     {1, 1, bIsIRI},
		"isblank":   {1, 1, bIsBlank},
		"isliteral": {1, 1, bIsLiteral},
		"isnumeric": {1, 1, bIsNumeric},
		"isarray":   {1, 1, bIsArray},
		"sameterm":  {2, 2, bSameTerm},

		// --- numeric scalars ---
		"abs": {1, 1, numeric1(math.Abs, func(i int64) (int64, bool) {
			if i < 0 {
				return -i, true
			}
			return i, true
		})},
		"round": {1, 1, numeric1(math.Round, ident)},
		"ceil":  {1, 1, numeric1(math.Ceil, ident)},
		"floor": {1, 1, numeric1(math.Floor, ident)},

		// --- strings ---
		"strlen":    {1, 1, bStrlen},
		"ucase":     {1, 1, strFn(strings.ToUpper)},
		"lcase":     {1, 1, strFn(strings.ToLower)},
		"contains":  {2, 2, strPred(strings.Contains)},
		"strstarts": {2, 2, strPred(strings.HasPrefix)},
		"strends":   {2, 2, strPred(strings.HasSuffix)},
		"substr":    {2, 3, bSubstr},
		"concat":    {0, -1, bConcat},
		"regex":     {2, 3, bRegex},
		"replace":   {3, 3, bReplace},

		// --- date/time ---
		"now":     {0, 0, bNow},
		"year":    {1, 1, dtField(func(t time.Time) int { return t.Year() })},
		"month":   {1, 1, dtField(func(t time.Time) int { return int(t.Month()) })},
		"day":     {1, 1, dtField(func(t time.Time) int { return t.Day() })},
		"hours":   {1, 1, dtField(func(t time.Time) int { return t.Hour() })},
		"minutes": {1, 1, dtField(func(t time.Time) int { return t.Minute() })},
		"seconds": {1, 1, dtField(func(t time.Time) int { return t.Second() })},

		// --- SciSPARQL array library (§4.1.3) ---
		"adims":  {1, 1, bADims},
		"ndims":  {1, 1, bNDims},
		"acount": {1, 1, bACount},
		"asum":   {1, 2, arrayAgg(array.AggSum)},
		"aavg":   {1, 2, arrayAgg(array.AggAvg)},
		"amin":   {1, 2, arrayAgg(array.AggMin)},
		"amax":   {1, 2, arrayAgg(array.AggMax)},

		"array":     {1, -1, bArray},
		"iota":      {1, 1, bIota},
		"afill":     {2, -1, bAFill},
		"transpose": {1, -1, bTranspose},
		"reshape":   {2, -1, bReshape},
		"aconcat":   {2, -1, bAConcat},

		// --- second-order functions (§4.3.1) ---
		"map":      {2, -1, bMap},
		"condense": {2, 2, bCondense},
		"apply":    {1, -1, bApply},
	}
}

func ident(i int64) (int64, bool) { return i, true }

func bStr(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	switch v := args[0].(type) {
	case rdf.IRI:
		return rdf.String{Val: string(v)}, nil
	case rdf.String:
		return rdf.String{Val: v.Val}, nil
	case nil:
		return nil, errf("str of unbound")
	default:
		s := v.String()
		s = strings.Trim(s, `"`)
		return rdf.String{Val: s}, nil
	}
}

func bLang(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	if s, ok := args[0].(rdf.String); ok {
		return rdf.String{Val: s.Lang}, nil
	}
	return rdf.String{Val: ""}, nil
}

func bDatatype(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	switch v := args[0].(type) {
	case rdf.Integer:
		return rdf.XSDInteger, nil
	case rdf.Float:
		return rdf.XSDDouble, nil
	case rdf.Boolean:
		return rdf.XSDBoolean, nil
	case rdf.String:
		return rdf.XSDString, nil
	case rdf.DateTime:
		return rdf.XSDDateTime, nil
	case rdf.Typed:
		return v.Datatype, nil
	case rdf.Array:
		return rdf.SSDMArray, nil
	default:
		return nil, errf("datatype of %v", termKindOf(args[0]))
	}
}

func bIRI(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	switch v := args[0].(type) {
	case rdf.IRI:
		return v, nil
	case rdf.String:
		return rdf.IRI(v.Val), nil
	default:
		return nil, errf("iri() of %v", termKindOf(args[0]))
	}
}

func termPred(f func(rdf.Term) bool) func(*evalCtx, []rdf.Term) (rdf.Term, error) {
	return func(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
		return rdf.Boolean(f(args[0])), nil
	}
}

var (
	bIsIRI   = termPred(func(t rdf.Term) bool { _, ok := t.(rdf.IRI); return ok })
	bIsBlank = termPred(func(t rdf.Term) bool { _, ok := t.(rdf.Blank); return ok })
	bIsArray = termPred(func(t rdf.Term) bool { _, ok := t.(rdf.Array); return ok })
)

func bIsLiteral(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	switch args[0].(type) {
	case rdf.String, rdf.Integer, rdf.Float, rdf.Boolean, rdf.DateTime, rdf.Typed:
		return rdf.Boolean(true), nil
	default:
		return rdf.Boolean(false), nil
	}
}

func bIsNumeric(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	_, ok := rdf.Numeric(args[0])
	if _, isBool := args[0].(rdf.Boolean); isBool {
		ok = false
	}
	return rdf.Boolean(ok), nil
}

func bSameTerm(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	if args[0] == nil || args[1] == nil {
		return nil, errf("sameterm with unbound")
	}
	return rdf.Boolean(args[0].Key() == args[1].Key()), nil
}

func numeric1(ff func(float64) float64, fi func(int64) (int64, bool)) func(*evalCtx, []rdf.Term) (rdf.Term, error) {
	return func(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
		n, ok := rdf.Numeric(args[0])
		if !ok {
			return nil, errf("numeric function over %v", termKindOf(args[0]))
		}
		if n.T == array.Int {
			if r, ok := fi(n.I); ok {
				return rdf.Integer(r), nil
			}
		}
		return rdf.Float(ff(n.Float())), nil
	}
}

func asString(t rdf.Term) (string, error) {
	if s, ok := t.(rdf.String); ok {
		return s.Val, nil
	}
	return "", errf("expected string, got %v", termKindOf(t))
}

func bStrlen(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	s, err := asString(args[0])
	if err != nil {
		return nil, err
	}
	return rdf.Integer(len([]rune(s))), nil
}

func strFn(f func(string) string) func(*evalCtx, []rdf.Term) (rdf.Term, error) {
	return func(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
		s, err := asString(args[0])
		if err != nil {
			return nil, err
		}
		return rdf.String{Val: f(s)}, nil
	}
}

func strPred(f func(string, string) bool) func(*evalCtx, []rdf.Term) (rdf.Term, error) {
	return func(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
		a, err := asString(args[0])
		if err != nil {
			return nil, err
		}
		b, err := asString(args[1])
		if err != nil {
			return nil, err
		}
		return rdf.Boolean(f(a, b)), nil
	}
}

func bSubstr(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	s, err := asString(args[0])
	if err != nil {
		return nil, err
	}
	start, ok := rdf.Numeric(args[1])
	if !ok {
		return nil, errf("substr start must be numeric")
	}
	runes := []rune(s)
	lo := int(start.Intval()) - 1 // SPARQL substr is 1-based
	if lo < 0 {
		lo = 0
	}
	if lo > len(runes) {
		lo = len(runes)
	}
	hi := len(runes)
	if len(args) == 3 {
		n, ok := rdf.Numeric(args[2])
		if !ok {
			return nil, errf("substr length must be numeric")
		}
		hi = lo + int(n.Intval())
		if hi > len(runes) {
			hi = len(runes)
		}
		if hi < lo {
			hi = lo
		}
	}
	return rdf.String{Val: string(runes[lo:hi])}, nil
}

func bConcat(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	var sb strings.Builder
	for _, a := range args {
		switch v := a.(type) {
		case rdf.String:
			sb.WriteString(v.Val)
		case nil:
			return nil, errf("concat of unbound")
		default:
			sb.WriteString(strings.Trim(v.String(), `"`))
		}
	}
	return rdf.String{Val: sb.String()}, nil
}

func compileRegex(pattern string, flags rdf.Term) (*regexp.Regexp, error) {
	p := pattern
	if flags != nil {
		f, err := asString(flags)
		if err != nil {
			return nil, err
		}
		if strings.Contains(f, "i") {
			p = "(?i)" + p
		}
		if strings.Contains(f, "s") {
			p = "(?s)" + p
		}
	}
	re, err := regexp.Compile(p)
	if err != nil {
		return nil, errf("bad regex %q: %v", pattern, err)
	}
	return re, nil
}

func bRegex(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	s, err := asString(args[0])
	if err != nil {
		return nil, err
	}
	pat, err := asString(args[1])
	if err != nil {
		return nil, err
	}
	var flags rdf.Term
	if len(args) == 3 {
		flags = args[2]
	}
	re, err := compileRegex(pat, flags)
	if err != nil {
		return nil, err
	}
	return rdf.Boolean(re.MatchString(s)), nil
}

func bReplace(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	s, err := asString(args[0])
	if err != nil {
		return nil, err
	}
	pat, err := asString(args[1])
	if err != nil {
		return nil, err
	}
	rep, err := asString(args[2])
	if err != nil {
		return nil, err
	}
	re, err := compileRegex(pat, nil)
	if err != nil {
		return nil, err
	}
	return rdf.String{Val: re.ReplaceAllString(s, rep)}, nil
}

func bNow(_ *evalCtx, _ []rdf.Term) (rdf.Term, error) {
	return rdf.DateTime{T: time.Now()}, nil
}

func dtField(f func(time.Time) int) func(*evalCtx, []rdf.Term) (rdf.Term, error) {
	return func(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
		dt, ok := args[0].(rdf.DateTime)
		if !ok {
			return nil, errf("date/time function over %v", termKindOf(args[0]))
		}
		return rdf.Integer(int64(f(dt.T))), nil
	}
}

// --- array built-ins ---

func asArray(t rdf.Term) (*array.Array, error) {
	if a, ok := t.(rdf.Array); ok {
		return a.A, nil
	}
	return nil, errf("expected array, got %v", termKindOf(t))
}

func bADims(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	a, err := asArray(args[0])
	if err != nil {
		return nil, err
	}
	return rdf.NewArray(a.Dims()), nil
}

func bNDims(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	a, err := asArray(args[0])
	if err != nil {
		return nil, err
	}
	return rdf.Integer(int64(a.NDims())), nil
}

func bACount(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	a, err := asArray(args[0])
	if err != nil {
		return nil, err
	}
	return rdf.Integer(int64(a.Count())), nil
}

// arrayAgg makes asum/aavg/amin/amax: over the whole array, or along a
// 1-based dimension when a second argument is given (§4.1.5).
func arrayAgg(op array.AggOp) func(*evalCtx, []rdf.Term) (rdf.Term, error) {
	return func(c *evalCtx, args []rdf.Term) (rdf.Term, error) {
		a, err := asArray(args[0])
		if err != nil {
			return nil, err
		}
		if len(args) == 2 {
			d, ok := rdf.Numeric(args[1])
			if !ok {
				return nil, errf("aggregation dimension must be numeric")
			}
			res, err := a.AggregateAlongCtx(c.matchCtx(), op, int(d.Intval())-1)
			if err != nil {
				return nil, &exprError{msg: err.Error()}
			}
			return rdf.NewArray(res), nil
		}
		n, err := a.AggregateCtx(c.matchCtx(), op)
		if err != nil {
			return nil, &exprError{msg: err.Error()}
		}
		return rdf.FromNumber(n), nil
	}
}

// bArray builds an array from scalars (a vector) or from arrays of
// equal shape (stacked along a new leading dimension).
func bArray(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	if a0, ok := args[0].(rdf.Array); ok {
		shape := a0.A.Shape
		parts := make([]*array.Array, len(args))
		for i, t := range args {
			at, ok := t.(rdf.Array)
			if !ok || !array.ShapeEqual(at.A.Shape, shape) {
				return nil, errf("array(): mixed shapes in stack")
			}
			parts[i] = at.A
		}
		out, err := array.Build(array.Float, append([]int{len(parts)}, shape...),
			func(idx []int) (array.Number, error) {
				return parts[idx[0]].At(idx[1:]...)
			})
		if err != nil {
			return nil, &exprError{msg: err.Error()}
		}
		return rdf.NewArray(out), nil
	}
	nums := make([]array.Number, len(args))
	for i, t := range args {
		n, ok := rdf.Numeric(t)
		if !ok {
			return nil, errf("array(): element %d is %v", i+1, termKindOf(t))
		}
		nums[i] = n
	}
	v, err := array.Vector(nums...)
	if err != nil {
		return nil, &exprError{msg: err.Error()}
	}
	return rdf.NewArray(v), nil
}

// bIota returns the integer vector [1..n].
func bIota(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	n, ok := rdf.Numeric(args[0])
	if !ok || n.Intval() < 1 {
		return nil, errf("iota(n) needs a positive count")
	}
	data := make([]int64, n.Intval())
	for i := range data {
		data[i] = int64(i) + 1
	}
	v, err := array.FromInts(data, len(data))
	if err != nil {
		return nil, &exprError{msg: err.Error()}
	}
	return rdf.NewArray(v), nil
}

func intShape(args []rdf.Term) ([]int, error) {
	shape := make([]int, len(args))
	for i, t := range args {
		n, ok := rdf.Numeric(t)
		if !ok {
			return nil, errf("dimension %d is %v", i+1, termKindOf(t))
		}
		shape[i] = int(n.Intval())
	}
	return shape, nil
}

func bAFill(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	v, ok := rdf.Numeric(args[0])
	if !ok {
		return nil, errf("afill value must be numeric")
	}
	shape, err := intShape(args[1:])
	if err != nil {
		return nil, err
	}
	et := array.Float
	if v.T == array.Int {
		et = array.Int
	}
	out, err := array.Build(et, shape, func([]int) (array.Number, error) { return v, nil })
	if err != nil {
		return nil, &exprError{msg: err.Error()}
	}
	return rdf.NewArray(out), nil
}

func bTranspose(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	a, err := asArray(args[0])
	if err != nil {
		return nil, err
	}
	var perm []int
	if len(args) > 1 {
		p, err := intShape(args[1:])
		if err != nil {
			return nil, err
		}
		perm = make([]int, len(p))
		for i, d := range p {
			perm[i] = d - 1
		}
	}
	out, err := a.Transpose(perm)
	if err != nil {
		return nil, &exprError{msg: err.Error()}
	}
	return rdf.NewArray(out), nil
}

func bReshape(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	a, err := asArray(args[0])
	if err != nil {
		return nil, err
	}
	shape, err := intShape(args[1:])
	if err != nil {
		return nil, err
	}
	out, err := a.Reshape(shape...)
	if err != nil {
		return nil, &exprError{msg: err.Error()}
	}
	return rdf.NewArray(out), nil
}

func bAConcat(_ *evalCtx, args []rdf.Term) (rdf.Term, error) {
	parts := make([]*array.Array, len(args))
	for i, t := range args {
		a, err := asArray(t)
		if err != nil {
			return nil, err
		}
		parts[i] = a
	}
	out, err := array.Concat(parts...)
	if err != nil {
		return nil, &exprError{msg: err.Error()}
	}
	return rdf.NewArray(out), nil
}

// bMap is the second-order MAP (§4.3.1): applies a function value
// elementwise across one or more same-shaped arrays.
func bMap(c *evalCtx, args []rdf.Term) (rdf.Term, error) {
	fv := args[0]
	arrays := make([]*array.Array, 0, len(args)-1)
	for _, t := range args[1:] {
		a, err := asArray(t)
		if err != nil {
			return nil, err
		}
		arrays = append(arrays, a)
	}
	mapper := func(nums []array.Number) (array.Number, error) {
		terms := make([]rdf.Term, len(nums))
		for i, n := range nums {
			terms[i] = rdf.FromNumber(n)
		}
		res, err := c.applyFuncValue(fv, terms)
		if err != nil {
			return array.Number{}, err
		}
		n, ok := rdf.Numeric(res)
		if !ok {
			return array.Number{}, fmt.Errorf("map: function produced %v", termKindOf(res))
		}
		return n, nil
	}
	out, err := array.MapCtx(c.matchCtx(), mapper, arrays...)
	if err != nil {
		return nil, &exprError{msg: err.Error()}
	}
	return rdf.NewArray(out), nil
}

// bCondense is the second-order CONDENSE (§4.3.1): folds an array into
// a scalar with a binary function value.
func bCondense(c *evalCtx, args []rdf.Term) (rdf.Term, error) {
	fv := args[0]
	a, err := asArray(args[1])
	if err != nil {
		return nil, err
	}
	reducer := func(acc, v array.Number) (array.Number, error) {
		res, err := c.applyFuncValue(fv, []rdf.Term{rdf.FromNumber(acc), rdf.FromNumber(v)})
		if err != nil {
			return array.Number{}, err
		}
		n, ok := rdf.Numeric(res)
		if !ok {
			return array.Number{}, fmt.Errorf("condense: function produced %v", termKindOf(res))
		}
		return n, nil
	}
	n, err := array.CondenseCtx(c.matchCtx(), reducer, a)
	if err != nil {
		return nil, &exprError{msg: err.Error()}
	}
	return rdf.FromNumber(n), nil
}

// bApply applies a function value to explicit arguments.
func bApply(c *evalCtx, args []rdf.Term) (rdf.Term, error) {
	return c.applyFuncValue(args[0], args[1:])
}

// registerStdlib installs the default foreign functions: a slice of Go's
// math library interfaced per §4.4 (foreign functions wrapping an
// existing computational library).
func registerStdlib(r *Registry) {
	mathFn := func(name string, f func(float64) float64) {
		r.RegisterForeign(name, 1, 1, func(args []rdf.Term) (rdf.Term, error) {
			n, ok := rdf.Numeric(args[0])
			if !ok {
				return nil, fmt.Errorf("%s over %v", name, termKindOf(args[0]))
			}
			return rdf.Float(f(n.Float())), nil
		})
	}
	mathFn("sqrt", math.Sqrt)
	mathFn("exp", math.Exp)
	mathFn("ln", math.Log)
	mathFn("log10", math.Log10)
	mathFn("sin", math.Sin)
	mathFn("cos", math.Cos)
	mathFn("tan", math.Tan)
	r.RegisterForeign("pow", 2, 2, func(args []rdf.Term) (rdf.Term, error) {
		a, ok1 := rdf.Numeric(args[0])
		b, ok2 := rdf.Numeric(args[1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("pow over non-numeric arguments")
		}
		return rdf.Float(math.Pow(a.Float(), b.Float())), nil
	})
	r.RegisterForeign("atan2", 2, 2, func(args []rdf.Term) (rdf.Term, error) {
		a, ok1 := rdf.Numeric(args[0])
		b, ok2 := rdf.Numeric(args[1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("atan2 over non-numeric arguments")
		}
		return rdf.Float(math.Atan2(a.Float(), b.Float())), nil
	})
}
