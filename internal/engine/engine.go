package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"scisparql/internal/rdf"
	"scisparql/internal/sparql"
)

// Binding is one query solution: a mapping from variable names to RDF
// terms. Absent variables are unbound.
//
// Bindings are copy-on-extend and immutable once yielded: evaluation
// steps share the incoming map untouched and clone it exactly once
// when they bind new variables (see extend), so a solution may be
// retained — in result sets, MINUS/subquery materializations, VALUES
// joins — without further copying. Any consumer adding a variable
// must clone first.
type Binding map[string]rdf.Term

func (b Binding) clone() Binding {
	out := make(Binding, len(b)+2)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Engine executes SciSPARQL queries and updates over a dataset.
type Engine struct {
	Dataset *rdf.Dataset
	Funcs   *Registry

	// DisableJoinOrder turns off cost-based reordering of triple
	// patterns (the ablation knob for experiment A1).
	DisableJoinOrder bool

	// MaxPathSteps bounds transitive property-path expansion as a
	// safety net against pathological graphs. 0 means no limit.
	MaxPathSteps int

	// BatchSize selects the vectorized execution batch size: 0 uses
	// rdf.DefaultBatchSize, a negative value disables batch execution
	// entirely (pure tuple-at-a-time, the pre-vectorization behavior).
	BatchSize int

	// DisableVecAgg turns off batch-native aggregation (the GROUP
	// BY/aggregate fast path over ID columns) while leaving the rest of
	// vectorized execution on — the ablation knob for experiment E11.
	DisableVecAgg bool

	// VecTopK bounds the ORDER BY + LIMIT top-K pushdown: the bounded
	// heap is used when OFFSET+LIMIT <= VecTopK. 0 uses the default
	// (4096); a negative value disables the pushdown (full sort always).
	VecTopK int

	// Vectorized-execution counters, exposed through VecStats.
	vecQueries     atomic.Int64
	vecBatches     atomic.Int64
	vecRows        atomic.Int64
	vecAggQueries  atomic.Int64
	vecAggGroups   atomic.Int64
	vecSortQueries atomic.Int64
	vecTopKQueries atomic.Int64
}

// effBatchSize resolves the BatchSize knob: rows per batch, or <= 0
// meaning batch execution is off.
func (e *Engine) effBatchSize() int {
	if e.BatchSize == 0 {
		return rdf.DefaultBatchSize
	}
	return e.BatchSize
}

// effTopK resolves the VecTopK knob: the largest OFFSET+LIMIT bound the
// ORDER BY top-K pushdown accepts. Negative VecTopK disables it.
func (e *Engine) effTopK() int {
	if e.VecTopK == 0 {
		return 4096
	}
	if e.VecTopK < 0 {
		return -1
	}
	return e.VecTopK
}

// VecStats reports cumulative vectorized-execution activity: how many
// query executions used a batch plan, how many batches/rows flowed out
// of vectorized pipelines, and how often the batch-native aggregation
// and ORDER BY fast paths engaged.
type VecStats struct {
	Queries int64
	Batches int64
	Rows    int64

	// AggQueries/AggGroups count batch-native aggregation runs and the
	// groups they produced; SortQueries counts vectorized ORDER BY
	// sorts, TopKQueries the subset that used the bounded top-K heap.
	AggQueries  int64
	AggGroups   int64
	SortQueries int64
	TopKQueries int64
}

// VecStats returns a snapshot of the engine's vectorized-execution
// counters.
func (e *Engine) VecStats() VecStats {
	return VecStats{
		Queries:     e.vecQueries.Load(),
		Batches:     e.vecBatches.Load(),
		Rows:        e.vecRows.Load(),
		AggQueries:  e.vecAggQueries.Load(),
		AggGroups:   e.vecAggGroups.Load(),
		SortQueries: e.vecSortQueries.Load(),
		TopKQueries: e.vecTopKQueries.Load(),
	}
}

// New creates an engine over a dataset with the standard function
// library registered.
func New(ds *rdf.Dataset) *Engine {
	e := &Engine{Dataset: ds, Funcs: NewRegistry()}
	registerStdlib(e.Funcs)
	return e
}

// ForeignFunc is the Go signature of a foreign function (§4.4):
// existing computational libraries are interfaced by wrapping entry
// points in this form and registering them.
type ForeignFunc func(args []rdf.Term) (rdf.Term, error)

// Function describes a callable: exactly one of Builtin, ExprBody,
// QueryBody or Foreign is set.
type Function struct {
	Name   string
	Params []string // for ExprBody/QueryBody

	MinArgs int
	MaxArgs int // -1 = variadic

	Builtin   func(c *evalCtx, args []rdf.Term) (rdf.Term, error)
	ExprBody  sparql.Expression
	QueryBody *sparql.Query
	Foreign   ForeignFunc

	// Cost is the optimizer's per-call cost estimate, as foreign
	// functions may declare (§4.4). It is advisory.
	Cost float64
}

// UserAggregate is a DEFINE AGGREGATE definition: an expression over a
// parameter bound to the 1-D array of the group's values.
type UserAggregate struct {
	Name  string
	Param string
	Expr  sparql.Expression
}

// Registry holds user-defined functions, foreign functions and user
// aggregates.
type Registry struct {
	mu   sync.RWMutex
	fns  map[string]*Function
	aggs map[string]*UserAggregate
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fns: map[string]*Function{}, aggs: map[string]*UserAggregate{}}
}

// Register installs a function under its name (replacing any previous
// definition, as re-running a DEFINE does in SSDM).
func (r *Registry) Register(f *Function) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fns[f.Name] = f
}

// RegisterForeign wraps a Go function as a SciSPARQL foreign function.
func (r *Registry) RegisterForeign(name string, minArgs, maxArgs int, fn ForeignFunc) {
	r.Register(&Function{Name: name, MinArgs: minArgs, MaxArgs: maxArgs, Foreign: fn})
}

// RegisterForeignCost additionally declares a per-call cost estimate
// (§4.4): the optimizer evaluates expensive filters after cheap ones
// when both are applicable at the same plan position.
func (r *Registry) RegisterForeignCost(name string, minArgs, maxArgs int, cost float64, fn ForeignFunc) {
	r.Register(&Function{Name: name, MinArgs: minArgs, MaxArgs: maxArgs, Cost: cost, Foreign: fn})
}

// RegisterAggregate installs a user aggregate.
func (r *Registry) RegisterAggregate(a *UserAggregate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.aggs[a.Name] = a
}

// Lookup finds a function by name.
func (r *Registry) Lookup(name string) (*Function, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.fns[name]
	return f, ok
}

// LookupAggregate finds a user aggregate by name.
func (r *Registry) LookupAggregate(name string) (*UserAggregate, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.aggs[name]
	return a, ok
}

// Names lists registered function names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.fns))
	for n := range r.fns {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// evalCtx carries the evaluation environment of one query: engine,
// dataset view and the active graph.
type evalCtx struct {
	eng   *Engine
	graph *rdf.Graph
	depth int // functional-view recursion guard

	// guard is the cancellation/budget state of this execution; nil
	// imposes nothing. Derived contexts share it so deadlines and
	// budgets span nested views, GRAPH clauses and subqueries.
	guard *queryGuard

	// named restricts which named graphs GRAPH clauses may range over
	// (the FROM NAMED dataset clause, §3.3.4); nil means all.
	named map[rdf.IRI]bool

	// plans memoizes compiled group step sequences for the duration of
	// one query execution (see compiledSteps); derived contexts share
	// it so nested groups compile once per query, not once per input
	// binding.
	plans map[planKey][]step

	// snaps pins one immutable snapshot per live graph for the duration
	// of this execution: the first read through any graph (the FROM
	// resolution, each GRAPH clause target) freezes its version, and
	// every later step of the same execution — including nested views
	// and subqueries, which share the map — reads that same version. A
	// query therefore never observes a concurrent writer's commit
	// mid-execution, and never blocks behind one.
	snaps map[*rdf.Graph]*rdf.Graph

	// vecPlans memoizes vectorized prefixes per (group, graph), like
	// plans. Unlike plans it is NOT shared with derived contexts: a
	// vecPlan owns mutable scratch batches, so sharing across nested
	// evaluations (views, subqueries) would need re-entrancy handling
	// everywhere; per-ctx plans keep the busy flag a rare safety net.
	// nil entries are cached too, so unvectorizable groups are analyzed
	// once per execution.
	vecPlans map[planKey]*vecPlan

	// trace collects the execution profile when this query runs under
	// EXPLAIN ANALYZE; nil — the common case — keeps the hot paths at a
	// single pointer check.
	trace *traceCollector
}

const maxCallDepth = 64

func (c *evalCtx) child() (*evalCtx, error) {
	if c.depth+1 > maxCallDepth {
		return nil, errf("function call nesting exceeds %d (recursive view?)", maxCallDepth)
	}
	return &evalCtx{eng: c.eng, graph: c.graph, depth: c.depth + 1, named: c.named, plans: c.ensurePlans(), snaps: c.ensureSnaps(), guard: c.guard, trace: c.trace}, nil
}

// ensureSnaps lazily creates the snapshot-pin map; derived contexts
// share it so one execution observes one version per graph.
func (c *evalCtx) ensureSnaps() map[*rdf.Graph]*rdf.Graph {
	if c.snaps == nil {
		c.snaps = make(map[*rdf.Graph]*rdf.Graph, 2)
	}
	return c.snaps
}

// pin resolves a live graph to this execution's pinned snapshot of it,
// freezing the current version on first use. Already-frozen graphs
// (and nil) pass through.
func (c *evalCtx) pin(g *rdf.Graph) *rdf.Graph {
	if g == nil || g.Frozen() {
		return g
	}
	m := c.ensureSnaps()
	if sg, ok := m[g]; ok {
		return sg
	}
	sg := g.Snapshot()
	m[g] = sg
	return sg
}

// Results is a solution table: ordered column names plus rows aligned
// with them. Unbound cells are nil.
type Results struct {
	Vars []string
	Rows [][]rdf.Term

	// Bool is the ASK verdict when the query was an ASK.
	Bool bool
	// Graph is the constructed graph for CONSTRUCT/DESCRIBE.
	Graph *rdf.Graph
	// Form echoes the query form.
	Form sparql.Form
}

// Len returns the number of solution rows.
func (r *Results) Len() int { return len(r.Rows) }

// Get returns the value of a named column in row i (nil when unbound
// or absent).
func (r *Results) Get(i int, name string) rdf.Term {
	for j, v := range r.Vars {
		if v == name {
			return r.Rows[i][j]
		}
	}
	return nil
}

// String renders a compact table for diagnostics.
func (r *Results) String() string {
	if r.Form == sparql.FormAsk {
		return fmt.Sprintf("ASK -> %v", r.Bool)
	}
	s := fmt.Sprintf("%v (%d rows)", r.Vars, len(r.Rows))
	return s
}
