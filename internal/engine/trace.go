package engine

import (
	"fmt"
	"strings"
	"time"

	"scisparql/internal/array"
	"scisparql/internal/sparql"
)

// Trace is the execution profile of one traced query — the payload of
// EXPLAIN ANALYZE. All durations are nanoseconds so the struct crosses
// the wire without unit ambiguity.
//
// Phase timings are cumulative: a subquery executed while enumerating
// the outer WHERE contributes to both the outer enumeration and its own
// projection phase, so phases may sum to more than TotalNanos.
type Trace struct {
	// ParseNanos is the time spent lexing/parsing the query text; zero
	// when the text was served from the compiled-query cache. Set by the
	// manager (core), not the engine.
	ParseNanos int64
	// PlanCached reports whether the parsed query came from the
	// compiled-query cache. Set by the manager.
	PlanCached bool

	// TotalNanos is the wall-clock time of the whole execution.
	TotalNanos int64
	// WhereNanos is the time enumerating WHERE solutions (ungrouped
	// SELECT pipeline; includes chunk waits incurred while matching).
	WhereNanos int64
	// AggNanos is the time in grouping/aggregation (which consumes the
	// WHERE stream itself, so grouped queries report AggNanos in place
	// of WhereNanos).
	AggNanos int64
	// ProjNanos is the time evaluating projection expressions, including
	// batched array-proxy prefetches (APR).
	ProjNanos int64
	// SortNanos is the time in ORDER BY.
	SortNanos int64

	// Rows is the number of result rows produced.
	Rows int
	// Bindings is the number of intermediate bindings produced while
	// enumerating solutions (the quantity MaxBindings budgets).
	Bindings int64
	// MatchCalls is the number of triple-pattern matcher invocations.
	MatchCalls int64
	// Matched is the number of candidate bindings emitted by pattern
	// matching before downstream filtering.
	Matched int64

	// Vectorized reports whether any part of the execution ran on the
	// batch-at-a-time path; VecBatches/VecRows count the batches and
	// rows its pipelines emitted.
	Vectorized bool
	VecBatches int64
	VecRows    int64

	// VecAggGroups is the number of groups the batch-native aggregation
	// path produced (zero when aggregation ran tuple-at-a-time or not at
	// all). VecSortRows is the number of ID rows the vectorized ORDER BY
	// sorted; VecSortTopK is the bounded top-K heap size when the ORDER
	// BY + LIMIT pushdown engaged (zero otherwise).
	VecAggGroups int64
	VecSortRows  int64
	VecSortTopK  int64

	// ChunkFetches is the number of array chunks fetched from a storage
	// back-end on this query's behalf (cache hits are not fetches).
	ChunkFetches int64
	// ChunkWaitNanos is the time the query was blocked waiting on chunk
	// retrieval.
	ChunkWaitNanos int64

	// Distributed execution (filled by the shard coordinator when the
	// instance runs a sharded topology; zero otherwise). ShardMode is
	// "pushdown" (per-shard execution, partials merged at the
	// coordinator) or "gather" (triple-pattern masks scattered, query
	// evaluated over the merged scratch graph). Shards is the topology
	// size, ShardCalls the shard requests this query issued, and
	// ShardRows the result rows / scan triples streamed back.
	ShardMode  string
	Shards     int
	ShardCalls int64
	ShardRows  int64

	// Error carries the failure that ended the execution, empty on
	// success — so a traced timeout still reports where the time went.
	Error string

	// Plan is the executed plan annotated with per-step call/emit
	// counters and per-pattern match counts.
	Plan string
}

// String renders the full EXPLAIN ANALYZE report: headline counters,
// phase timings, and the annotated plan.
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "EXPLAIN ANALYZE  total=%v rows=%d bindings=%d\n",
		time.Duration(t.TotalNanos), t.Rows, t.Bindings)
	if t.PlanCached {
		sb.WriteString("parse: plan cache hit\n")
	} else if t.ParseNanos > 0 {
		fmt.Fprintf(&sb, "parse: %v\n", time.Duration(t.ParseNanos))
	}
	fmt.Fprintf(&sb, "phases: where=%v aggregate=%v project=%v sort=%v\n",
		time.Duration(t.WhereNanos), time.Duration(t.AggNanos),
		time.Duration(t.ProjNanos), time.Duration(t.SortNanos))
	fmt.Fprintf(&sb, "matching: calls=%d matched=%d\n", t.MatchCalls, t.Matched)
	if t.Vectorized {
		fmt.Fprintf(&sb, "vectorized: batches=%d rows=%d", t.VecBatches, t.VecRows)
		if t.VecAggGroups > 0 {
			fmt.Fprintf(&sb, " agg-groups=%d", t.VecAggGroups)
		}
		if t.VecSortRows > 0 {
			fmt.Fprintf(&sb, " sort-rows=%d", t.VecSortRows)
		}
		if t.VecSortTopK > 0 {
			fmt.Fprintf(&sb, " top-k=%d", t.VecSortTopK)
		}
		sb.WriteByte('\n')
	}
	if t.ShardMode != "" {
		fmt.Fprintf(&sb, "distributed: mode=%s shards=%d calls=%d rows=%d\n",
			t.ShardMode, t.Shards, t.ShardCalls, t.ShardRows)
	}
	if t.ChunkFetches > 0 || t.ChunkWaitNanos > 0 {
		fmt.Fprintf(&sb, "chunks: fetched=%d wait=%v\n",
			t.ChunkFetches, time.Duration(t.ChunkWaitNanos))
	}
	if t.Error != "" {
		fmt.Fprintf(&sb, "error: %s\n", t.Error)
	}
	sb.WriteString("plan:\n")
	sb.WriteString(t.Plan)
	return sb.String()
}

// phase identifies one timed section of the SELECT pipeline.
type phase int

const (
	phaseWhere phase = iota
	phaseAgg
	phaseProj
	phaseSort
)

// traceCollector accumulates the profile of one query execution. It is
// confined to the query's goroutine except for fetch, whose fields are
// atomic (chunk workers record into it). A nil collector — the untraced
// fast path — imposes only nil checks.
type traceCollector struct {
	fetch    array.FetchStats
	groups   map[*sparql.Group]*groupTrace
	patterns map[string]*patternStat

	matchCalls int64
	matched    int64
	bindings   int64

	// Vectorized-execution accounting: per-group operator rows plus the
	// headline totals plan.run adds after each pipeline run.
	vecGroups    map[*sparql.Group]*vecGroupTrace
	vectorized   bool
	vecBatches   int64
	vecRows      int64
	vecAggGroups int64
	vecSortRows  int64
	vecSortTopK  int64

	whereNanos, aggNanos, projNanos, sortNanos int64
}

func newTraceCollector() *traceCollector {
	return &traceCollector{
		groups:   map[*sparql.Group]*groupTrace{},
		patterns: map[string]*patternStat{},
	}
}

// groupTrace holds the per-step counters of one executed group graph
// pattern. Step rows align with the group's compiled step sequence
// (compilation is deterministic, so a group re-compiled against another
// graph shares the same rows).
type groupTrace struct {
	steps []*stepTrace
}

// stepTrace is one plan node with its runtime counters.
type stepTrace struct {
	kind     string
	detail   string
	children []*sparql.Group
	patterns []sparql.TriplePattern

	calls   int64 // input bindings the step was run with
	emitted int64 // bindings the step yielded downstream
}

// patternStat counts candidate bindings one triple pattern emitted
// (keyed by the pattern's text across the whole plan).
type patternStat struct {
	emitted int64
}

var noopPhaseStop = func() {}

// startPhase begins timing a pipeline phase; the returned func adds the
// elapsed time. A nil collector returns a shared no-op.
func (tr *traceCollector) startPhase(p phase) func() {
	if tr == nil {
		return noopPhaseStop
	}
	t0 := time.Now()
	return func() {
		d := time.Since(t0).Nanoseconds()
		switch p {
		case phaseWhere:
			tr.whereNanos += d
		case phaseAgg:
			tr.aggNanos += d
		case phaseProj:
			tr.projNanos += d
		case phaseSort:
			tr.sortNanos += d
		}
	}
}

// patternStat returns the counter for a triple pattern, creating it on
// first use.
func (tr *traceCollector) patternStat(tp sparql.TriplePattern) *patternStat {
	key := tp.String()
	ps, ok := tr.patterns[key]
	if !ok {
		ps = &patternStat{}
		tr.patterns[key] = ps
	}
	return ps
}

// wrap instruments a group's compiled step sequence, registering (or
// reusing) the group's trace rows and wrapping each step in a counting
// shim. Called from compiledSteps once per (group, graph) per
// execution.
func (tr *traceCollector) wrap(g *sparql.Group, steps []step) []step {
	gt, ok := tr.groups[g]
	if !ok {
		gt = &groupTrace{steps: make([]*stepTrace, len(steps))}
		for i, st := range steps {
			row := &stepTrace{}
			row.kind, row.detail, row.children, row.patterns = describeStep(st)
			gt.steps[i] = row
		}
		tr.groups[g] = gt
	}
	out := make([]step, len(steps))
	for i, st := range steps {
		out[i] = &tracedStep{inner: st, st: gt.steps[i]}
	}
	return out
}

// vecGroupTrace holds the operator counter rows of one group's
// vectorized plan; covered is how many leading tuple steps the vec
// pipeline replaces (their rows are elided from the rendering unless
// the tuple path also ran them). sub holds the per-branch operator rows
// of union ops, keyed by the op's index in ops.
type vecGroupTrace struct {
	ops     []*vecOpTrace
	covered int
	sub     map[int][][]*vecOpTrace
}

// vecOpTrace is one vectorized operator with its runtime counters.
type vecOpTrace struct {
	kind, detail  string
	batches, rows int64
}

// registerVec attaches counter rows to a group's vectorized plan,
// reusing existing rows when the group is re-planned (by a nested
// context) so the report aggregates across executions, like wrap.
// Union operators additionally get one row set per branch so EXPLAIN
// ANALYZE attributes rows/batches to the branch that produced them.
func (tr *traceCollector) registerVec(g *sparql.Group, pl *vecPlan) {
	if tr.vecGroups == nil {
		tr.vecGroups = map[*sparql.Group]*vecGroupTrace{}
	}
	vt, ok := tr.vecGroups[g]
	if !ok || len(vt.ops) != len(pl.ops) {
		vt = &vecGroupTrace{ops: make([]*vecOpTrace, len(pl.ops)), covered: pl.covered}
		for i, op := range pl.ops {
			k, d := op.describe()
			vt.ops[i] = &vecOpTrace{kind: k, detail: d}
		}
		tr.vecGroups[g] = vt
	}
	pl.opTr = vt.ops
	for i, op := range pl.ops {
		u, isUnion := op.(*vecUnion)
		if !isUnion {
			continue
		}
		if vt.sub == nil {
			vt.sub = map[int][][]*vecOpTrace{}
		}
		rows, ok := vt.sub[i]
		if !ok || len(rows) != len(u.branches) {
			rows = make([][]*vecOpTrace, len(u.branches))
			for bi := range u.branches {
				br := &u.branches[bi]
				rows[bi] = make([]*vecOpTrace, len(br.ops))
				for oi, bop := range br.ops {
					k, d := bop.describe()
					rows[bi][oi] = &vecOpTrace{kind: k, detail: d}
				}
			}
			vt.sub[i] = rows
		}
		for bi := range u.branches {
			if len(rows[bi]) == len(u.branches[bi].ops) {
				u.branches[bi].opTr = rows[bi]
			}
		}
	}
}

// tracedStep counts a step's input bindings and emissions around the
// wrapped step's run.
type tracedStep struct {
	inner step
	st    *stepTrace
}

func (t *tracedStep) certainVars(into map[string]bool) { t.inner.certainVars(into) }

func (t *tracedStep) run(c *evalCtx, b Binding, yield func(Binding) error) error {
	t.st.calls++
	return t.inner.run(c, b, func(b2 Binding) error {
		t.st.emitted++
		return yield(b2)
	})
}

// describeStep classifies a compiled step for plan rendering: its node
// kind, a one-line detail, the nested groups it may enter, and (for
// BGPs) its triple patterns.
func describeStep(st step) (kind, detail string, children []*sparql.Group, patterns []sparql.TriplePattern) {
	switch v := st.(type) {
	case *bgpStep:
		return "bgp", fmt.Sprintf("%d pattern(s), cost-ordered", len(v.patterns)), nil, v.patterns
	case *filterStep:
		return "filter", v.cond.String(), nil, nil
	case *bindStep:
		return "bind", fmt.Sprintf("?%s := %s", v.name, v.expr.String()), nil, nil
	case *optionalStep:
		return "optional", "left join", []*sparql.Group{v.group}, nil
	case *unionStep:
		return "union", fmt.Sprintf("%d branches", len(v.branches)), v.branches, nil
	case *minusStep:
		return "minus", "anti-join", []*sparql.Group{v.group}, nil
	case *graphStep:
		if v.clause.Var != "" {
			return "graph", "?" + v.clause.Var, []*sparql.Group{v.clause.Group}, nil
		}
		return "graph", fmt.Sprintf("%v", v.clause.Name), []*sparql.Group{v.clause.Group}, nil
	case *subgroupStep:
		return "group", "", []*sparql.Group{v.group}, nil
	case *subSelectStep:
		var ch []*sparql.Group
		if v.q.Where != nil {
			ch = append(ch, v.q.Where)
		}
		return "subquery", "evaluated bottom-up, joined on projected vars", ch, nil
	case *valuesStep:
		return "values", fmt.Sprintf("%d rows over %v", len(v.data.Rows), v.data.Vars), nil, nil
	default:
		return fmt.Sprintf("%T", st), "", nil, nil
	}
}

// finish assembles the Trace after an execution.
func (tr *traceCollector) finish(q *sparql.Query, total time.Duration, res *Results, err error) *Trace {
	t := &Trace{
		TotalNanos:     total.Nanoseconds(),
		WhereNanos:     tr.whereNanos,
		AggNanos:       tr.aggNanos,
		ProjNanos:      tr.projNanos,
		SortNanos:      tr.sortNanos,
		Bindings:       tr.bindings,
		MatchCalls:     tr.matchCalls,
		Matched:        tr.matched,
		ChunkFetches:   tr.fetch.Fetched.Load(),
		ChunkWaitNanos: tr.fetch.WaitNanos.Load(),
		Vectorized:     tr.vectorized,
		VecBatches:     tr.vecBatches,
		VecRows:        tr.vecRows,
	}
	t.VecAggGroups = tr.vecAggGroups
	t.VecSortRows = tr.vecSortRows
	t.VecSortTopK = tr.vecSortTopK
	if res != nil {
		t.Rows = res.Len()
	}
	if err != nil {
		t.Error = err.Error()
	}
	t.Plan = tr.renderPlan(q)
	return t
}

// renderPlan walks the query's WHERE clause and renders each executed
// group's steps with their counters; groups that were compiled but
// never entered (or never compiled at all) are marked.
func (tr *traceCollector) renderPlan(q *sparql.Query) string {
	var sb strings.Builder
	if q.Where == nil {
		sb.WriteString("  (no WHERE clause)\n")
	} else {
		tr.renderGroup(q.Where, &sb, 1)
	}
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&sb, "  group by %d expression(s)\n", len(q.GroupBy))
	}
	if tr.vecAggGroups > 0 {
		fmt.Fprintf(&sb, "  aggregate: batch-native over ID columns, %d group(s)\n", tr.vecAggGroups)
	}
	if len(q.OrderBy) > 0 {
		if tr.vecSortRows > 0 {
			line := fmt.Sprintf("  order by %d criterion(s): vectorized, %d ID row(s) sorted", len(q.OrderBy), tr.vecSortRows)
			if tr.vecSortTopK > 0 {
				line += fmt.Sprintf(", top-k heap bound=%d", tr.vecSortTopK)
			}
			sb.WriteString(line + "\n")
		} else {
			fmt.Fprintf(&sb, "  order by %d criterion(s)\n", len(q.OrderBy))
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, "  limit %d\n", q.Limit)
	}
	return sb.String()
}

func (tr *traceCollector) renderGroup(g *sparql.Group, sb *strings.Builder, depth int) {
	gt, ok := tr.groups[g]
	if !ok {
		indent(sb, depth)
		sb.WriteString("(not executed)\n")
		return
	}
	covered := 0
	if vt, ok := tr.vecGroups[g]; ok {
		for i, op := range vt.ops {
			indent(sb, depth)
			line := op.kind
			if op.detail != "" {
				line += " " + op.detail
			}
			fmt.Fprintf(sb, "%-58s batches=%d rows=%d\n", line, op.batches, op.rows)
			for bi, branch := range vt.sub[i] {
				indent(sb, depth+1)
				fmt.Fprintf(sb, "branch %d:\n", bi)
				for _, bop := range branch {
					indent(sb, depth+2)
					bl := bop.kind
					if bop.detail != "" {
						bl += " " + bop.detail
					}
					fmt.Fprintf(sb, "%-54s batches=%d rows=%d\n", bl, bop.batches, bop.rows)
				}
			}
		}
		covered = vt.covered
		// The vectorized prefix ended mid-group: everything below this
		// line ran tuple-at-a-time over decoded bindings.
		if covered > 0 && covered < len(gt.steps) {
			indent(sb, depth)
			fmt.Fprintf(sb, "-- fallback boundary: %d step(s) below run tuple-at-a-time --\n", len(gt.steps)-covered)
		}
	}
	for i, row := range gt.steps {
		// Tuple rows the vec pipeline replaced are elided unless the
		// tuple path also executed them (a mixed execution).
		if i < covered && row.calls == 0 {
			continue
		}
		indent(sb, depth)
		line := row.kind
		if row.detail != "" {
			line += " " + row.detail
		}
		fmt.Fprintf(sb, "%-58s calls=%d emitted=%d\n", line, row.calls, row.emitted)
		for _, tp := range row.patterns {
			indent(sb, depth+1)
			key := tp.String()
			matched := int64(0)
			if ps, ok := tr.patterns[key]; ok {
				matched = ps.emitted
			}
			fmt.Fprintf(sb, "%-56s matched=%d\n", key, matched)
		}
		for _, child := range row.children {
			tr.renderGroup(child, sb, depth+1)
		}
	}
}
