package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"scisparql/internal/array"
	"scisparql/internal/rdf"
	"scisparql/internal/sparql"
)

// Query executes a parsed query over the engine's dataset with no
// deadline or resource bounds.
func (e *Engine) Query(q *sparql.Query) (*Results, error) {
	return e.QueryContext(context.Background(), q, Limits{})
}

// QueryContext executes a parsed query under a context and per-query
// limits. Cancellation is cooperative: the binding-stream hot loops
// (triple matching, property-path expansion, aggregation, projection)
// and the graph's batched enumerations poll the context, so a
// cancelled or timed-out query stops within one batch and returns
// ErrQueryCancelled / ErrQueryTimeout. Panics anywhere inside
// execution (including foreign functions) are trapped and surface as
// ErrInternal with the stack logged.
func (e *Engine) QueryContext(ctx context.Context, q *sparql.Query, lim Limits) (*Results, error) {
	return e.queryCollect(ctx, q, lim, nil)
}

// QueryTraced executes a parsed query like QueryContext while collecting
// an execution trace — the engine half of EXPLAIN ANALYZE. The trace is
// returned even when the query fails (its Error field is set), so a
// timed-out query still reports where the time went. Tracing adds
// per-step counter shims and map lookups; use QueryContext on hot paths.
func (e *Engine) QueryTraced(ctx context.Context, q *sparql.Query, lim Limits) (*Results, *Trace, error) {
	tr := newTraceCollector()
	start := time.Now()
	res, err := e.queryCollect(ctx, q, lim, tr)
	return res, tr.finish(q, time.Since(start), res, err), err
}

func (e *Engine) queryCollect(ctx context.Context, q *sparql.Query, lim Limits, tr *traceCollector) (res *Results, err error) {
	defer trapPanic("query", &err)
	ctx, cancel := limitCtx(ctx, lim)
	defer cancel()
	if tr != nil {
		// Chunk retrievals under this context report into the trace.
		ctx = array.WithFetchStats(ctx, &tr.fetch)
	}
	gq := newQueryGuard(ctx, lim)
	if err := gq.checkCtx(); err != nil {
		return nil, err
	}
	if tr != nil {
		defer func() { tr.bindings = gq.bindings }()
	}
	ectx := &evalCtx{eng: e, guard: gq, trace: tr}
	ectx.graph = ectx.pin(e.activeGraph(q))
	if len(q.FromNamed) > 0 {
		ectx.named = make(map[rdf.IRI]bool, len(q.FromNamed))
		for _, n := range q.FromNamed {
			ectx.named[n] = true
		}
	}
	switch q.Form {
	case sparql.FormSelect:
		res, err = e.execSelect(ectx, q, Binding{})
	case sparql.FormAsk:
		res, err = e.execAsk(ectx, q)
	case sparql.FormConstruct:
		res, err = e.execConstruct(ectx, q)
	case sparql.FormDescribe:
		res, err = e.execDescribe(ectx, q)
	default:
		return nil, fmt.Errorf("engine: unknown query form")
	}
	if err != nil {
		return nil, err
	}
	return capResultRows(res, lim)
}

// limitCtx applies Limits.Timeout on top of the caller's context; the
// earlier deadline wins.
func limitCtx(ctx context.Context, lim Limits) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if lim.Timeout > 0 {
		return context.WithTimeout(ctx, lim.Timeout)
	}
	return ctx, func() {}
}

// capResultRows enforces the result-row budget at the query boundary:
// exceeding it is an error, not a silent truncation, so a client can
// tell "the data has N rows" apart from "the query was cut off". It is
// the authoritative check; execSelect additionally fails an overrun
// incrementally whenever no later pipeline stage could shrink the
// output back under the budget.
func capResultRows(res *Results, lim Limits) (*Results, error) {
	if lim.MaxResultRows > 0 && res != nil && len(res.Rows) > lim.MaxResultRows {
		return nil, errResultRows(lim.MaxResultRows)
	}
	return res, nil
}

// QueryString parses and executes a query.
func (e *Engine) QueryString(src string) (*Results, error) {
	q, err := sparql.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return e.Query(q)
}

// QueryWith executes a SELECT query with variables pre-bound — the
// execution path of parameterized views and prepared statements.
func (e *Engine) QueryWith(q *sparql.Query, initial Binding) (*Results, error) {
	return e.QueryWithContext(context.Background(), q, initial, Limits{})
}

// QueryWithContext is QueryWith under a context and per-query limits.
func (e *Engine) QueryWithContext(ctx context.Context, q *sparql.Query, initial Binding, lim Limits) (res *Results, err error) {
	if q.Form != sparql.FormSelect {
		return nil, fmt.Errorf("engine: parameterized execution requires a SELECT query")
	}
	defer trapPanic("query", &err)
	ctx, cancel := limitCtx(ctx, lim)
	defer cancel()
	gq := newQueryGuard(ctx, lim)
	if err := gq.checkCtx(); err != nil {
		return nil, err
	}
	ectx := &evalCtx{eng: e, guard: gq}
	ectx.graph = ectx.pin(e.activeGraph(q))
	if len(q.FromNamed) > 0 {
		ectx.named = make(map[rdf.IRI]bool, len(q.FromNamed))
		for _, n := range q.FromNamed {
			ectx.named[n] = true
		}
	}
	res, err = e.execSelect(ectx, q, initial)
	if err != nil {
		return nil, err
	}
	return capResultRows(res, lim)
}

// activeGraph resolves the FROM clause: no FROM uses the default
// graph; one FROM uses that named graph; several FROMs build a merged
// view (materialized — acceptable at the metadata scale SSDM's graphs
// live at, since arrays are not copied, only referenced).
func (e *Engine) activeGraph(q *sparql.Query) *rdf.Graph {
	if len(q.From) == 0 {
		return e.Dataset.Default
	}
	if len(q.From) == 1 {
		if g := e.Dataset.Named(q.From[0], false); g != nil {
			return g
		}
		return rdf.NewGraph()
	}
	merged := rdf.NewGraph()
	for _, name := range q.From {
		if g := e.Dataset.Named(name, false); g != nil {
			g.Triples(func(s, p, o rdf.Term) bool {
				merged.Add(s, p, o)
				return true
			})
		}
	}
	return merged
}

// whereSolutions enumerates the WHERE solutions (a single empty
// binding when the query has no WHERE clause). budget, when >= 0, is
// the number of solutions the caller will consume before stopping (the
// LIMIT pushdown bound): the vectorized path clamps its batch size to
// it so a small LIMIT over a wide fallback bridge does not decode —
// and charge the binding budget for — a full batch of rows nobody
// reads.
func (c *evalCtx) whereSolutions(q *sparql.Query, initial Binding, budget int, yield func(Binding) error) error {
	if q.Where == nil {
		return yield(initial)
	}
	// Hybrid vectorized path: when the group has a vectorizable prefix
	// and there are no pre-bound variables, enumerate ID batches and
	// bridge each row into the remaining tuple steps. vecWhere declines
	// (handled == false) when batch mode is off or nothing vectorizes.
	if len(initial) == 0 {
		if handled, err := c.vecWhere(q.Where, budget, yield); handled {
			return err
		}
	}
	return c.evalGroup(q.Where, initial, yield)
}

// execSelect runs the SELECT pipeline: WHERE -> grouping/aggregation
// -> HAVING -> projection -> ORDER BY -> DISTINCT -> OFFSET/LIMIT
// (§3.5, §3.7).
func (e *Engine) execSelect(ctx *evalCtx, q *sparql.Query, initial Binding) (*Results, error) {
	// Incremental result-row cap: once the output can no longer shrink
	// back under the budget (no DISTINCT to dedupe, no LIMIT at or
	// below the cap to trim), an overrun is fatal the moment it occurs
	// — fail then, instead of materializing the full result set first
	// and checking post-hoc. HAVING is handled at each check site: the
	// budget only counts solutions that survived it.
	rowCap := ctx.guard.resultRowCap()
	earlyCap := -1
	if rowCap > 0 && !q.Distinct && (q.Limit < 0 || q.Limit > rowCap) {
		earlyCap = rowCap + q.Offset
	}

	grouped := len(q.GroupBy) > 0
	if !grouped {
		for _, it := range q.Items {
			if it.Expr != nil && e.hasAggregate(it.Expr) {
				grouped = true
				break
			}
		}
		for _, h := range q.Having {
			if e.hasAggregate(h) {
				grouped = true
			}
		}
	}

	// Fully-columnar fast path: when the whole WHERE clause vectorizes
	// and the projection is plain variables, solutions never
	// materialize as Bindings — DISTINCT/OFFSET/LIMIT run over ID rows
	// and only surviving rows decode to terms. vecSelect declines
	// (ok == false) whenever any pipeline stage below would differ.
	if !grouped && len(q.Having) == 0 && len(initial) == 0 && q.Where != nil {
		if res, ok, err := ctx.vecSelect(q, rowCap, earlyCap); ok {
			return res, err
		}
	}

	var solutions []Binding
	if grouped {
		// Work on a copy: aggregate rewriting must not mutate the parsed
		// query, which may be re-executed (functional views, prepared
		// statements).
		qc := *q
		qc.Items = append([]sparql.SelectItem(nil), q.Items...)
		qc.Having = append([]sparql.Expression(nil), q.Having...)
		qc.OrderBy = append([]sparql.OrderCond(nil), q.OrderBy...)
		q = &qc
		stop := ctx.trace.startPhase(phaseAgg)
		var err error
		solutions, err = e.aggregateSolutions(ctx, q, initial)
		stop()
		if err != nil {
			return nil, err
		}
	} else {
		// LIMIT pushdown: without ordering, grouping or DISTINCT, the
		// solution stream can stop as soon as OFFSET+LIMIT solutions
		// exist.
		stopAt := -1
		if q.Limit >= 0 && len(q.OrderBy) == 0 && !q.Distinct && len(q.Having) == 0 {
			stopAt = q.Offset + q.Limit
		}
		stopWhere := ctx.trace.startPhase(phaseWhere)
		err := ctx.whereSolutions(q, initial, stopAt, func(b Binding) error {
			solutions = append(solutions, b)
			if earlyCap >= 0 && len(q.Having) == 0 && len(solutions) > earlyCap {
				return errResultRows(rowCap)
			}
			if stopAt >= 0 && len(solutions) >= stopAt {
				return errStop
			}
			return nil
		})
		stopWhere()
		if err != nil && err != errStop {
			return nil, err
		}
		// Ungrouped HAVING behaves as a final filter.
		for _, h := range q.Having {
			kept := solutions[:0]
			for _, b := range solutions {
				if ok, err := ctx.evalBool(h, b); err == nil && ok {
					kept = append(kept, b)
				}
			}
			solutions = kept
		}
	}

	// Projection list.
	var vars []string
	var exprs []sparql.Expression // nil = plain var copy
	if q.Star || len(q.Items) == 0 {
		seen := map[string]bool{}
		for _, b := range solutions {
			for v := range b {
				if !seen[v] && !strings.Contains(v, ":") && !strings.HasPrefix(v, "#") {
					seen[v] = true
					vars = append(vars, v)
				}
			}
		}
		sort.Strings(vars)
		exprs = make([]sparql.Expression, len(vars))
	} else {
		for _, it := range q.Items {
			vars = append(vars, it.Var)
			exprs = append(exprs, it.Expr)
		}
	}

	stopProj := ctx.trace.startPhase(phaseProj)
	// Batched APR (§6.2.4): when projection expressions dereference
	// proxied arrays, gather the chunks every solution will touch and
	// resolve each proxy's bag in one back-end interaction before
	// evaluating. Without this, scattered element accesses degenerate to
	// one retrieval per element.
	batch := false
	for _, e := range exprs {
		if containsSubscript(e) {
			batch = true
			break
		}
	}
	if batch {
		pending := map[*array.Proxy][]int{}
		for _, b := range solutions {
			for _, e := range exprs {
				ctx.collectSubscriptChunks(e, b, pending)
			}
		}
		for p, chunks := range pending {
			if err := p.PrefetchChunksCtx(ctx.matchCtx(), chunks); err != nil {
				return nil, err
			}
		}
	}

	// Evaluate projections, keeping the full binding for ORDER BY.
	type outRow struct {
		cells []rdf.Term
		bind  Binding
	}
	rows := make([]outRow, 0, len(solutions))
	for _, b := range solutions {
		if err := ctx.guard.tick(); err != nil {
			return nil, err
		}
		cells := make([]rdf.Term, len(vars))
		extended := b
		cloned := false
		for i, name := range vars {
			if exprs[i] == nil {
				cells[i] = b[name]
				continue
			}
			v, err := ctx.eval(exprs[i], b)
			if err != nil {
				if _, isExpr := err.(*exprError); !isExpr {
					return nil, err
				}
				v = nil // expression error -> unbound (§3.6)
			}
			cells[i] = v
			if v != nil {
				if !cloned {
					extended = extended.clone()
					cloned = true
				}
				extended[name] = v
			}
		}
		rows = append(rows, outRow{cells: cells, bind: extended})
		// HAVING has been applied on both paths by now, so every row
		// built here reaches the output (modulo DISTINCT/LIMIT, which
		// disable earlyCap).
		if earlyCap >= 0 && len(rows) > earlyCap {
			return nil, errResultRows(rowCap)
		}
	}
	stopProj()

	// ORDER BY over the extended bindings (aliases visible).
	if len(q.OrderBy) > 0 {
		stopSort := ctx.trace.startPhase(phaseSort)
		sort.SliceStable(rows, func(i, j int) bool {
			for _, oc := range q.OrderBy {
				vi, ei := ctx.eval(oc.Expr, rows[i].bind)
				vj, ej := ctx.eval(oc.Expr, rows[j].bind)
				if ei != nil && ej != nil {
					continue
				}
				if ei != nil {
					return !oc.Desc // errors/unbound sort first ascending
				}
				if ej != nil {
					return oc.Desc
				}
				cmp, err := Compare(vi, vj, false)
				if err != nil || cmp == 0 {
					continue
				}
				if oc.Desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
		stopSort()
	}

	res := &Results{Vars: vars, Form: sparql.FormSelect}
	seen := map[string]bool{}
	for _, r := range rows {
		if q.Distinct {
			key := rowKey(r.cells)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		res.Rows = append(res.Rows, r.cells)
	}
	// OFFSET / LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Offset:]
		}
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

func rowKey(cells []rdf.Term) string {
	var sb strings.Builder
	for _, c := range cells {
		if c == nil {
			sb.WriteString("\x00U")
		} else {
			sb.WriteString(c.Key())
		}
		sb.WriteByte('\x01')
	}
	return sb.String()
}

func (e *Engine) execAsk(ctx *evalCtx, q *sparql.Query) (*Results, error) {
	found := false
	stop := ctx.trace.startPhase(phaseWhere)
	err := ctx.whereSolutions(q, Binding{}, 1, func(Binding) error {
		found = true
		return errStop
	})
	stop()
	if err != nil && err != errStop {
		return nil, err
	}
	return &Results{Form: sparql.FormAsk, Bool: found}, nil
}

func (e *Engine) execConstruct(ctx *evalCtx, q *sparql.Query) (*Results, error) {
	out := rdf.NewGraph()
	stop := ctx.trace.startPhase(phaseWhere)
	err := ctx.whereSolutions(q, Binding{}, -1, func(b Binding) error {
		instantiateTemplate(out, q.ConstructTemplate, b)
		return nil
	})
	stop()
	if err != nil && err != errStop {
		return nil, err
	}
	return &Results{Form: sparql.FormConstruct, Graph: out}, nil
}

// instantiateTemplate adds the template's triples under a solution;
// template blank nodes become fresh nodes per solution, and triples
// with unbound components are skipped.
func instantiateTemplate(g *rdf.Graph, tpl []sparql.TriplePattern, b Binding) {
	blanks := map[string]rdf.Blank{}
	resolve := func(n sparql.Node) rdf.Term {
		if n.IsVar() {
			return b[n.Var]
		}
		if bl, ok := n.Term.(rdf.Blank); ok {
			fresh, ok2 := blanks[string(bl)]
			if !ok2 {
				fresh = g.NewBlank()
				blanks[string(bl)] = fresh
			}
			return fresh
		}
		return n.Term
	}
	for _, tp := range tpl {
		s := resolve(tp.S)
		o := resolve(tp.O)
		var p rdf.Term
		switch pv := tp.Path.(type) {
		case sparql.PathIRI:
			p = pv.IRI
		case sparql.PathVar:
			p = b[pv.Name]
		}
		if s == nil || p == nil || o == nil {
			continue
		}
		if pi, ok := p.(rdf.IRI); ok {
			g.Add(s, pi, o)
		}
	}
}

func (e *Engine) execDescribe(ctx *evalCtx, q *sparql.Query) (*Results, error) {
	out := rdf.NewGraph()
	describe := func(t rdf.Term) {
		ctx.graph.MatchTerms(t, nil, nil, func(s, p, o rdf.Term) bool {
			out.Add(s, p, o)
			return true
		})
	}
	targets := map[string]rdf.Term{}
	for _, de := range q.DescribeTerms {
		switch v := de.(type) {
		case sparql.ELit:
			targets[v.Term.Key()] = v.Term
		case sparql.EVar:
			err := ctx.whereSolutions(q, Binding{}, -1, func(b Binding) error {
				if t, ok := b[v.Name]; ok {
					targets[t.Key()] = t
				}
				return nil
			})
			if err != nil && err != errStop {
				return nil, err
			}
		}
	}
	for _, t := range targets {
		describe(t)
	}
	return &Results{Form: sparql.FormDescribe, Graph: out}, nil
}

// --- aggregation (§3.5) ---

// hasAggregate extends sparql.HasAggregate with user-defined
// aggregates (DEFINE AGGREGATE names applied as calls).
func (e *Engine) hasAggregate(x sparql.Expression) bool {
	if sparql.HasAggregate(x) {
		return true
	}
	found := false
	var walk func(sparql.Expression)
	walk = func(ex sparql.Expression) {
		if found || ex == nil {
			return
		}
		switch v := ex.(type) {
		case sparql.ECall:
			if _, ok := e.Funcs.LookupAggregate(v.Name); ok {
				found = true
				return
			}
			for _, a := range v.Args {
				walk(a)
			}
		case sparql.EBin:
			walk(v.L)
			walk(v.R)
		case sparql.EUn:
			walk(v.E)
		case sparql.EIn:
			walk(v.E)
			for _, a := range v.List {
				walk(a)
			}
		case sparql.ESubscript:
			walk(v.Base)
		}
	}
	walk(x)
	return found
}

// aggSpec is one aggregate register discovered in the query.
type aggSpec struct {
	std  *sparql.EAgg
	user *UserAggregate
	arg  sparql.Expression
	dist bool
	sep  string
}

// aggState accumulates one register within one group.
type aggState struct {
	n      int64
	sum    *array.AggState
	sample rdf.Term
	concat []string
	seen   map[string]bool
	values []array.Number // user aggregates
	errors bool
}

// rewriteAggs replaces aggregate subtrees with references to register
// variables ("#aggN"), returning the rewritten expression.
func (e *Engine) rewriteAggs(x sparql.Expression, specs *[]aggSpec) sparql.Expression {
	switch v := x.(type) {
	case sparql.EAgg:
		idx := len(*specs)
		sp := aggSpec{std: &v, arg: v.Arg, dist: v.Distinct, sep: v.Separator}
		*specs = append(*specs, sp)
		return sparql.EVar{Name: fmt.Sprintf("#agg%d", idx)}
	case sparql.ECall:
		if ua, ok := e.Funcs.LookupAggregate(v.Name); ok && len(v.Args) == 1 {
			idx := len(*specs)
			*specs = append(*specs, aggSpec{user: ua, arg: v.Args[0]})
			return sparql.EVar{Name: fmt.Sprintf("#agg%d", idx)}
		}
		args := make([]sparql.Expression, len(v.Args))
		for i, a := range v.Args {
			args[i] = e.rewriteAggs(a, specs)
		}
		return sparql.ECall{Name: v.Name, Args: args}
	case sparql.EBin:
		return sparql.EBin{Op: v.Op, L: e.rewriteAggs(v.L, specs), R: e.rewriteAggs(v.R, specs)}
	case sparql.EUn:
		return sparql.EUn{Op: v.Op, E: e.rewriteAggs(v.E, specs)}
	case sparql.EIn:
		out := sparql.EIn{Not: v.Not, E: e.rewriteAggs(v.E, specs)}
		for _, a := range v.List {
			out.List = append(out.List, e.rewriteAggs(a, specs))
		}
		return out
	case sparql.ESubscript:
		out := sparql.ESubscript{Base: e.rewriteAggs(v.Base, specs)}
		out.Subs = v.Subs
		return out
	default:
		return x
	}
}

// aggregateSolutions evaluates WHERE, groups solutions, computes
// aggregate registers and returns one binding per group carrying the
// GROUP BY variables plus register values; q.Items and q.Having are
// rewritten in place to reference the registers.
func (e *Engine) aggregateSolutions(ctx *evalCtx, q *sparql.Query, initial Binding) ([]Binding, error) {
	var specs []aggSpec
	for i := range q.Items {
		if q.Items[i].Expr != nil {
			q.Items[i].Expr = e.rewriteAggs(q.Items[i].Expr, &specs)
		}
	}
	for i := range q.Having {
		q.Having[i] = e.rewriteAggs(q.Having[i], &specs)
	}
	for i := range q.OrderBy {
		q.OrderBy[i].Expr = e.rewriteAggs(q.OrderBy[i].Expr, &specs)
	}

	// Batch-native fast path: group and fold directly over the ID
	// columns when the WHERE clause fully vectorizes and every GROUP BY
	// criterion / aggregate argument is a plain variable (vecagg.go).
	if out, ok, err := e.vecAggregate(ctx, q, initial, specs); ok {
		return out, err
	}

	type group struct {
		rep    Binding
		states []*aggState
	}
	groups := map[string]*group{}
	var orderKeys []string

	err := ctx.whereSolutions(q, initial, -1, func(b Binding) error {
		// Cancellation check per folded solution: aggregation consumes
		// the full solution stream, so it must stop promptly too.
		if err := ctx.guard.tick(); err != nil {
			return err
		}
		// Group key.
		var kb strings.Builder
		keyVals := make([]rdf.Term, len(q.GroupBy))
		for i, ge := range q.GroupBy {
			v, err := ctx.eval(ge, b)
			if err != nil {
				v = nil
			}
			keyVals[i] = v
			if v == nil {
				kb.WriteString("\x00U")
			} else {
				kb.WriteString(v.Key())
			}
			kb.WriteByte('\x01')
		}
		key := kb.String()
		gr, ok := groups[key]
		if !ok {
			rep := Binding{}
			for i, ge := range q.GroupBy {
				if ev, isVar := ge.(sparql.EVar); isVar && keyVals[i] != nil {
					rep[ev.Name] = keyVals[i]
				}
			}
			gr = &group{rep: rep, states: make([]*aggState, len(specs))}
			for i := range gr.states {
				gr.states[i] = &aggState{sum: array.NewAggState()}
			}
			groups[key] = gr
			orderKeys = append(orderKeys, key)
		}
		// Fold each register.
		for i, sp := range specs {
			st := gr.states[i]
			if sp.std != nil && sp.arg == nil { // COUNT(*)
				st.n++
				continue
			}
			v, err := ctx.eval(sp.arg, b)
			if err != nil || v == nil {
				continue // per SPARQL, errors are ignored by aggregates
			}
			if sp.dist {
				if st.seen == nil {
					st.seen = map[string]bool{}
				}
				if st.seen[v.Key()] {
					continue
				}
				st.seen[v.Key()] = true
			}
			st.n++
			if st.sample == nil {
				st.sample = v
			}
			if sp.user != nil {
				if n, ok := rdf.Numeric(v); ok {
					st.values = append(st.values, n)
				}
				continue
			}
			switch sp.std.Func {
			case "SUM", "AVG", "MIN", "MAX":
				if n, ok := rdf.Numeric(v); ok {
					st.sum.Add(n)
				} else {
					st.errors = true
				}
			case "GROUP_CONCAT":
				if s, ok := v.(rdf.String); ok {
					st.concat = append(st.concat, s.Val)
				} else {
					st.concat = append(st.concat, strings.Trim(v.String(), `"`))
				}
			}
		}
		return nil
	})
	if err != nil && err != errStop {
		return nil, err
	}

	// With aggregates but no GROUP BY and no solutions, SPARQL yields a
	// single group over the empty solution set.
	if len(groups) == 0 && len(q.GroupBy) == 0 {
		gr := &group{rep: Binding{}, states: make([]*aggState, len(specs))}
		for i := range gr.states {
			gr.states[i] = &aggState{sum: array.NewAggState()}
		}
		groups[""] = gr
		orderKeys = append(orderKeys, "")
	}

	var out []Binding
	for _, key := range orderKeys {
		gr := groups[key]
		b := gr.rep.clone()
		for i, sp := range specs {
			v, err := e.finishAgg(ctx, sp, gr.states[i])
			if err != nil {
				continue // register left unbound
			}
			b[fmt.Sprintf("#agg%d", i)] = v
		}
		// HAVING (§3.5).
		keep := true
		for _, h := range q.Having {
			ok, err := ctx.evalBool(h, b)
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, b)
		}
	}
	return out, nil
}

func (e *Engine) finishAgg(ctx *evalCtx, sp aggSpec, st *aggState) (rdf.Term, error) {
	if sp.user != nil {
		if len(st.values) == 0 {
			return nil, errf("empty group for user aggregate")
		}
		vec, err := array.Vector(st.values...)
		if err != nil {
			return nil, errf("%v", err)
		}
		child, err := ctx.child()
		if err != nil {
			return nil, err
		}
		return child.eval(sp.user.Expr, Binding{sp.user.Param: rdf.NewArray(vec)})
	}
	switch sp.std.Func {
	case "COUNT":
		return rdf.Integer(st.n), nil
	case "SAMPLE":
		if st.sample == nil {
			return nil, errf("empty group")
		}
		return st.sample, nil
	case "GROUP_CONCAT":
		sep := sp.sep
		if sep == "" {
			sep = " "
		}
		return rdf.String{Val: strings.Join(st.concat, sep)}, nil
	case "SUM", "AVG", "MIN", "MAX":
		if st.errors {
			return nil, errf("non-numeric value in %s", sp.std.Func)
		}
		var op array.AggOp
		switch sp.std.Func {
		case "SUM":
			op = array.AggSum
		case "AVG":
			op = array.AggAvg
		case "MIN":
			op = array.AggMin
		case "MAX":
			op = array.AggMax
		}
		if sp.std.Func == "SUM" && st.sum.Count == 0 {
			return rdf.Integer(0), nil
		}
		n, err := st.sum.Result(op)
		if err != nil {
			return nil, errf("%v", err)
		}
		return rdf.FromNumber(n), nil
	default:
		return nil, errf("unknown aggregate %s", sp.std.Func)
	}
}
