package engine

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"scisparql/internal/rdf"
	"scisparql/internal/sparql"
)

func selectResults() *Results {
	return &Results{
		Form: sparql.FormSelect,
		Vars: []string{"s", "v"},
		Rows: [][]rdf.Term{
			{rdf.IRI("http://ex/a"), rdf.Integer(7)},
			{rdf.Blank("b0"), rdf.String{Val: "hi,\nthere", Lang: "en"}},
			{rdf.IRI("http://ex/c"), nil},
		},
	}
}

func TestWriteJSONSelect(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, selectResults()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]map[string]string `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.Head.Vars) != 2 || doc.Head.Vars[0] != "s" {
		t.Fatalf("head.vars wrong: %v", doc.Head.Vars)
	}
	if len(doc.Results.Bindings) != 3 {
		t.Fatalf("want 3 bindings, got %d", len(doc.Results.Bindings))
	}
	b0 := doc.Results.Bindings[0]
	if b0["s"]["type"] != "uri" || b0["s"]["value"] != "http://ex/a" {
		t.Errorf("row 0 s: %v", b0["s"])
	}
	if b0["v"]["datatype"] != string(rdf.XSDInteger) || b0["v"]["value"] != "7" {
		t.Errorf("row 0 v: %v", b0["v"])
	}
	b1 := doc.Results.Bindings[1]
	if b1["s"]["type"] != "bnode" {
		t.Errorf("row 1 s: %v", b1["s"])
	}
	if b1["v"]["xml:lang"] != "en" || b1["v"]["value"] != "hi,\nthere" {
		t.Errorf("row 1 v: %v", b1["v"])
	}
	if _, bound := doc.Results.Bindings[2]["v"]; bound {
		t.Error("unbound cell must be absent from the binding object")
	}
}

func TestWriteJSONAsk(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, &Results{Form: sparql.FormAsk, Bool: true}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["boolean"] != true {
		t.Fatalf("boolean missing or false: %s", sb.String())
	}
	if _, ok := doc["head"]; !ok {
		t.Fatal("head member missing")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, selectResults()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "s,v\r\n") {
		t.Errorf("missing CRLF header: %q", sb.String())
	}
	// The embedded comma and newline force RFC 4180 quoting; parse the
	// document back and check the cells survived.
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v\n%q", err, sb.String())
	}
	if len(recs) != 4 {
		t.Fatalf("want header+3 records, got %d", len(recs))
	}
	if recs[0][0] != "s" || recs[0][1] != "v" {
		t.Errorf("header: %v", recs[0])
	}
	if recs[1][0] != "http://ex/a" || recs[1][1] != "7" {
		t.Errorf("row 1: %v", recs[1])
	}
	if recs[2][0] != "_:b0" || !strings.HasPrefix(recs[2][1], "hi,") {
		t.Errorf("row 2: %v", recs[2])
	}
	if recs[3][1] != "" {
		t.Errorf("unbound cell must be empty: %v", recs[3])
	}
}

// TestJSONControlCharsRoundTrip: a literal with control characters
// survives JSON encode → decode byte-identically.
func TestJSONControlCharsRoundTrip(t *testing.T) {
	nasty := "a\x01b\x02\tc"
	r := &Results{Form: sparql.FormSelect, Vars: []string{"v"},
		Rows: [][]rdf.Term{{rdf.String{Val: nasty}}}}
	var sb strings.Builder
	if err := WriteJSON(&sb, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Results struct {
			Bindings []map[string]map[string]string `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if got := doc.Results.Bindings[0]["v"]["value"]; got != nasty {
		t.Fatalf("mangled: %q != %q", got, nasty)
	}
}
