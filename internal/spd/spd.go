// Package spd implements the Sequence Pattern Detector (SPD) algorithm
// of SSDM (dissertation §6.2.5).
//
// When a bag of array proxies is resolved against a chunked storage
// back-end, the set of chunk numbers that has to be fetched is known in
// advance. Issuing one retrieval statement per chunk is the worst case
// (strategy SQL-SINGLE in the evaluation); the SPD instead discovers
// arithmetic-progression regularity in the sorted chunk-number sequence
// at query run time, so that the back-end can be asked for compact
// ranges (BETWEEN with an optional stride) instead of long enumerations.
//
// The detector is exact: expanding its output always reproduces the
// input sequence. A separate covering mode trades a bounded amount of
// wasted transfer for fewer statements by merging nearby runs.
package spd

import "sort"

// Run is a finite arithmetic progression of non-negative integers:
// Start, Start+Stride, ..., Start+(Count-1)*Stride.
type Run struct {
	Start  int
	Stride int // always >= 1 for Count > 1; 1 for singleton runs
	Count  int
}

// Last returns the final element of the run.
func (r Run) Last() int {
	return r.Start + (r.Count-1)*r.Stride
}

// Expand appends the run's elements to dst and returns the result.
func (r Run) Expand(dst []int) []int {
	v := r.Start
	for i := 0; i < r.Count; i++ {
		dst = append(dst, v)
		v += r.Stride
	}
	return dst
}

// Expand concatenates the elements of all runs.
func Expand(runs []Run) []int {
	var out []int
	for _, r := range runs {
		out = r.Expand(out)
	}
	return out
}

// Normalize sorts ids ascending and removes duplicates, in place.
func Normalize(ids []int) []int {
	if len(ids) < 2 {
		return ids
	}
	sort.Ints(ids)
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[w-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}

// Detect greedily decomposes a strictly increasing sequence into maximal
// arithmetic runs. The decomposition is exact: Expand(Detect(x)) == x.
//
// The input must be sorted ascending without duplicates (use Normalize
// first when that is not guaranteed). Detect never keeps a reference to
// the input slice.
func Detect(ids []int) []Run {
	var runs []Run
	n := len(ids)
	for i := 0; i < n; {
		if i == n-1 {
			runs = append(runs, Run{Start: ids[i], Stride: 1, Count: 1})
			break
		}
		stride := ids[i+1] - ids[i]
		j := i + 1
		for j+1 < n && ids[j+1]-ids[j] == stride {
			j++
		}
		count := j - i + 1
		// A two-element "run" with a large stride is usually noise; keep
		// it anyway — exactness matters more than minimality, and the
		// covering mode below handles the statement-count concern.
		runs = append(runs, Run{Start: ids[i], Stride: stride, Count: count})
		i = j + 1
	}
	return runs
}

// Cover produces a set of stride-1 runs that together contain every id,
// merging runs whenever the number of extra (unrequested) elements
// introduced by a merge does not exceed maxWaste per gap. This
// corresponds to formulating plain BETWEEN range queries that fetch a
// few unneeded chunks in exchange for fewer statements.
//
// With maxWaste = 0 the result is the exact set of maximal contiguous
// ranges. The input must be sorted ascending without duplicates.
func Cover(ids []int, maxWaste int) []Run {
	if len(ids) == 0 {
		return nil
	}
	var runs []Run
	start := ids[0]
	prev := ids[0]
	for _, v := range ids[1:] {
		if gap := v - prev - 1; gap > maxWaste {
			runs = append(runs, Run{Start: start, Stride: 1, Count: prev - start + 1})
			start = v
		}
		prev = v
	}
	runs = append(runs, Run{Start: start, Stride: 1, Count: prev - start + 1})
	return runs
}

// Elements reports the total number of elements described by runs.
func Elements(runs []Run) int {
	total := 0
	for _, r := range runs {
		total += r.Count
	}
	return total
}
