package spd

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDetectEmpty(t *testing.T) {
	if got := Detect(nil); got != nil {
		t.Fatalf("Detect(nil) = %v, want nil", got)
	}
}

func TestDetectSingleton(t *testing.T) {
	got := Detect([]int{7})
	want := []Run{{Start: 7, Stride: 1, Count: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Detect([7]) = %v, want %v", got, want)
	}
}

func TestDetectContiguous(t *testing.T) {
	got := Detect([]int{3, 4, 5, 6})
	want := []Run{{Start: 3, Stride: 1, Count: 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDetectStrided(t *testing.T) {
	got := Detect([]int{0, 10, 20, 30, 40})
	want := []Run{{Start: 0, Stride: 10, Count: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestDetectMixed(t *testing.T) {
	in := []int{1, 2, 4, 6}
	got := Detect(in)
	want := []Run{{1, 1, 2}, {4, 2, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if out := Expand(got); !reflect.DeepEqual(out, in) {
		t.Fatalf("Expand(Detect(x)) = %v, want %v", out, in)
	}
}

func TestDetectIrregular(t *testing.T) {
	in := []int{0, 1, 5, 9, 13, 14, 100}
	if out := Expand(Detect(in)); !reflect.DeepEqual(out, in) {
		t.Fatalf("Expand(Detect(x)) = %v, want %v", out, in)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]int{5, 1, 3, 1, 5, 2})
	want := []int{1, 2, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestNormalizeShort(t *testing.T) {
	if got := Normalize([]int{9}); !reflect.DeepEqual(got, []int{9}) {
		t.Fatalf("got %v", got)
	}
	if got := Normalize(nil); got != nil {
		t.Fatalf("got %v", got)
	}
}

func TestCoverExact(t *testing.T) {
	got := Cover([]int{1, 2, 3, 7, 8, 20}, 0)
	want := []Run{{1, 1, 3}, {7, 1, 2}, {20, 1, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCoverMergesSmallGaps(t *testing.T) {
	got := Cover([]int{1, 2, 3, 6, 7, 100}, 2)
	want := []Run{{1, 1, 7}, {100, 1, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCoverEmpty(t *testing.T) {
	if got := Cover(nil, 5); got != nil {
		t.Fatalf("got %v, want nil", got)
	}
}

func TestRunLast(t *testing.T) {
	if got := (Run{Start: 2, Stride: 3, Count: 4}).Last(); got != 11 {
		t.Fatalf("Last = %d, want 11", got)
	}
}

func TestElements(t *testing.T) {
	if got := Elements([]Run{{0, 1, 3}, {9, 2, 5}}); got != 8 {
		t.Fatalf("Elements = %d, want 8", got)
	}
}

// Property: for any set of ids, Expand(Detect(Normalize(ids))) equals
// Normalize(ids) exactly.
func TestDetectRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		ids := make([]int, len(raw))
		for i, v := range raw {
			ids[i] = int(v)
		}
		ids = Normalize(ids)
		if len(ids) == 0 {
			return Detect(ids) == nil
		}
		return reflect.DeepEqual(Expand(Detect(ids)), ids)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Cover's runs contain every requested id, and per-gap waste
// is bounded by maxWaste.
func TestCoverContainsAllProperty(t *testing.T) {
	f := func(raw []uint16, wasteRaw uint8) bool {
		maxWaste := int(wasteRaw % 16)
		ids := make([]int, len(raw))
		for i, v := range raw {
			ids[i] = int(v)
		}
		ids = Normalize(ids)
		runs := Cover(ids, maxWaste)
		covered := map[int]bool{}
		for _, v := range Expand(runs) {
			covered[v] = true
		}
		for _, id := range ids {
			if !covered[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDetectStridedPatternsFromArrayAccess(t *testing.T) {
	// Simulate chunk numbers touched by a strided array access: every
	// 4th chunk over 1000 chunks.
	var ids []int
	for c := 0; c < 1000; c += 4 {
		ids = append(ids, c)
	}
	runs := Detect(ids)
	if len(runs) != 1 {
		t.Fatalf("expected single run, got %d: %v", len(runs), runs[:min(3, len(runs))])
	}
	if runs[0].Stride != 4 || runs[0].Count != 250 {
		t.Fatalf("got %+v", runs[0])
	}
}

func TestDetectRandomSubsetExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		set := map[int]bool{}
		for i := 0; i < n; i++ {
			set[rng.Intn(500)] = true
		}
		ids := make([]int, 0, len(set))
		for v := range set {
			ids = append(ids, v)
		}
		sort.Ints(ids)
		if !reflect.DeepEqual(Expand(Detect(ids)), ids) {
			t.Fatalf("trial %d: round trip failed", trial)
		}
	}
}
