// Package scanesc implements the numeric character escapes shared by
// the SPARQL and Turtle grammars: UCHAR, i.e. \uXXXX (4 hex digits)
// and \UXXXXXXXX (8 hex digits). Both lexers decode them through this
// package so validation — bad hex digits, UTF-16 surrogate halves,
// values beyond the Unicode range — is identical at every input
// surface and round-trips with the writers' escaping are lossless.
package scanesc

import "fmt"

// HexVal returns the value of one hex digit, -1 when r is not a hex
// digit.
func HexVal(r rune) int {
	switch {
	case r >= '0' && r <= '9':
		return int(r - '0')
	case r >= 'a' && r <= 'f':
		return int(r-'a') + 10
	case r >= 'A' && r <= 'F':
		return int(r-'A') + 10
	default:
		return -1
	}
}

// DecodeUCHAR decodes the digits of a \uXXXX (kind 'u') or \UXXXXXXXX
// (kind 'U') escape, reading one rune at a time from next (which
// returns -1 at end of input). It rejects truncated escapes, non-hex
// digits, UTF-16 surrogate halves (U+D800–U+DFFF, meaningless as
// scalar values) and code points beyond U+10FFFF.
func DecodeUCHAR(kind rune, next func() rune) (rune, error) {
	n := 4
	if kind == 'U' {
		n = 8
	}
	var v int32
	for i := 0; i < n; i++ {
		r := next()
		if r == -1 {
			return 0, fmt.Errorf("truncated \\%c escape: want %d hex digits, got %d", kind, n, i)
		}
		d := HexVal(r)
		if d < 0 {
			return 0, fmt.Errorf("bad \\%c escape: %q is not a hex digit", kind, r)
		}
		v = v*16 + int32(d)
		if v > 0x10FFFF {
			return 0, fmt.Errorf("\\%c escape beyond U+10FFFF", kind)
		}
	}
	if v >= 0xD800 && v <= 0xDFFF {
		return 0, fmt.Errorf("\\%c escape U+%04X is a UTF-16 surrogate half, not a character", kind, v)
	}
	return rune(v), nil
}
