package mediator

import (
	"testing"

	"scisparql/internal/engine"
	"scisparql/internal/rdf"
	"scisparql/internal/relstore"
)

func employeeDB(t *testing.T) *relstore.Database {
	t.Helper()
	db := relstore.NewDatabase()
	stmts := []string{
		`CREATE TABLE emp (id INT, name TEXT, dept TEXT, salary DOUBLE, photo BLOB, PRIMARY KEY (id))`,
		`INSERT INTO emp VALUES (1, 'alice', 'research', 6000.0, NULL)`,
		`INSERT INTO emp VALUES (2, 'bob', 'research', 5000.0, NULL)`,
		`INSERT INTO emp VALUES (3, 'carol', 'ops', 5500.0, NULL)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestImportBasic(t *testing.T) {
	db := employeeDB(t)
	g := rdf.NewGraph()
	n, err := Import(db, Mapping{
		Table:         "emp",
		Class:         rdf.IRI("http://ex/Employee"),
		SubjectPrefix: "http://ex/emp/",
		KeyCols:       []string{"id"},
		PropNS:        "http://ex/",
		Skip:          map[string]bool{"id": true},
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	// Per row: type + name + dept + salary = 4 (photo NULL skipped, id skipped).
	if n != 12 || g.Size() != 12 {
		t.Fatalf("added %d, size %d", n, g.Size())
	}
	if !g.Has(rdf.IRI("http://ex/emp/1"), rdf.IRI("http://ex/name"), rdf.String{Val: "alice"}) {
		t.Fatal("missing mapped triple")
	}
	if !g.Has(rdf.IRI("http://ex/emp/3"), rdf.RDFType, rdf.IRI("http://ex/Employee")) {
		t.Fatal("missing class triple")
	}
}

func TestImportQueryableWithSciSPARQL(t *testing.T) {
	db := employeeDB(t)
	ds := rdf.NewDataset()
	_, err := Import(db, Mapping{
		Table:         "emp",
		Class:         rdf.IRI("http://ex/Employee"),
		SubjectPrefix: "http://ex/emp/",
		KeyCols:       []string{"id"},
		PropNS:        "http://ex/",
	}, ds.Default)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(ds)
	res, err := e.QueryString(`
PREFIX ex: <http://ex/>
SELECT ?dept (AVG(?s) AS ?avg) WHERE { ?e a ex:Employee ; ex:dept ?dept ; ex:salary ?s }
GROUP BY ?dept ORDER BY ?dept`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("%v", res.Rows)
	}
	if res.Get(1, "avg") != rdf.Float(5500) {
		t.Fatalf("%v", res.Rows)
	}
}

func TestImportBlankNodesWithoutKeys(t *testing.T) {
	db := employeeDB(t)
	g := rdf.NewGraph()
	_, err := Import(db, Mapping{Table: "emp", PropNS: "http://ex/"}, g)
	if err != nil {
		t.Fatal(err)
	}
	blanks := map[string]bool{}
	g.MatchTerms(nil, rdf.IRI("http://ex/name"), nil, func(s, _, _ rdf.Term) bool {
		if b, ok := s.(rdf.Blank); ok {
			blanks[string(b)] = true
		}
		return true
	})
	if len(blanks) != 3 {
		t.Fatalf("blank subjects %d", len(blanks))
	}
}

func TestImportPropertyOverride(t *testing.T) {
	db := employeeDB(t)
	g := rdf.NewGraph()
	foafName := rdf.IRI("http://xmlns.com/foaf/0.1/name")
	_, err := Import(db, Mapping{
		Table:         "emp",
		SubjectPrefix: "http://ex/emp/",
		KeyCols:       []string{"id"},
		PropNS:        "http://ex/",
		Props:         map[string]rdf.IRI{"name": foafName},
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Has(rdf.IRI("http://ex/emp/2"), foafName, rdf.String{Val: "bob"}) {
		t.Fatal("property override ignored")
	}
}

func TestImportErrors(t *testing.T) {
	db := employeeDB(t)
	g := rdf.NewGraph()
	if _, err := Import(db, Mapping{Table: ""}, g); err == nil {
		t.Fatal("empty table should fail")
	}
	if _, err := Import(db, Mapping{Table: "missing"}, g); err == nil {
		t.Fatal("unknown table should fail")
	}
	if _, err := Import(db, Mapping{Table: "emp", KeyCols: []string{"nope"}}, g); err == nil {
		t.Fatal("unknown key column should fail")
	}
}

func TestImportCompositeKey(t *testing.T) {
	db := relstore.NewDatabase()
	if _, err := db.Exec(`CREATE TABLE obs (run INT, step INT, v DOUBLE, PRIMARY KEY (run, step))`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO obs VALUES (1, 2, 3.5)`); err != nil {
		t.Fatal(err)
	}
	g := rdf.NewGraph()
	if _, err := Import(db, Mapping{
		Table:         "obs",
		SubjectPrefix: "http://ex/obs/",
		KeyCols:       []string{"run", "step"},
		PropNS:        "http://ex/",
	}, g); err != nil {
		t.Fatal(err)
	}
	if !g.Has(rdf.IRI("http://ex/obs/1/2"), rdf.IRI("http://ex/v"), rdf.Float(3.5)) {
		t.Fatal("composite key subject missing")
	}
}
