// Package mediator implements Relational-to-RDF mapping (dissertation
// §2.3.1): rows of a relational table become RDF subjects, columns
// become properties, and the result is queryable with SciSPARQL
// alongside any other metadata — the mediator capability SSDM inherits
// from the SWARD/SARD lineage of its platform.
//
// The same mapping covers the spreadsheet-style stores of §2.3.4
// (Chelonia: tasks x named variables), which is exactly how the BISTAB
// application's source data was shaped: every (row, column, value)
// cell becomes one triple, with NULL cells simply absent.
package mediator

import (
	"fmt"
	"strings"

	"scisparql/internal/rdf"
	"scisparql/internal/relstore"
)

// Mapping describes how one table is exposed as RDF. It supplies the
// minimum components every Relational-to-RDF mapping has (§2.3.1):
// table -> class, key values -> subject IRIs, columns -> properties.
type Mapping struct {
	// Table is the relational table to expose.
	Table string
	// Class is asserted as rdf:type for every row subject ("" = none).
	Class rdf.IRI
	// SubjectPrefix forms subject IRIs: prefix + key values joined by
	// "/". With no KeyCols, rows become fresh blank nodes (the mapping
	// rule for tables without a primary key).
	SubjectPrefix string
	// KeyCols are the columns whose values identify a row.
	KeyCols []string
	// PropNS is the namespace prepended to column names to form
	// property IRIs.
	PropNS string
	// Props overrides the property IRI for individual columns.
	Props map[string]rdf.IRI
	// Skip lists columns not to map.
	Skip map[string]bool
}

// Import materializes the mapped RDF view of the table into g and
// returns the number of triples added. BLOB columns are skipped (bulk
// data belongs to the array back-end, not the metadata graph).
func Import(db *relstore.Database, m Mapping, g *rdf.Graph) (int, error) {
	if m.Table == "" {
		return 0, fmt.Errorf("mediator: empty table name")
	}
	res, err := db.Exec("SELECT * FROM " + m.Table)
	if err != nil {
		return 0, err
	}
	colIdx := map[string]int{}
	for i, c := range res.Cols {
		colIdx[c] = i
	}
	for _, k := range m.KeyCols {
		if _, ok := colIdx[strings.ToLower(k)]; !ok {
			return 0, fmt.Errorf("mediator: key column %q not in table %s", k, m.Table)
		}
	}
	added := 0
	for _, row := range res.Rows {
		subj, err := m.subjectFor(g, row, colIdx)
		if err != nil {
			return added, err
		}
		if m.Class != "" {
			if g.Add(subj, rdf.RDFType, m.Class) {
				added++
			}
		}
		for i, col := range res.Cols {
			if m.Skip[col] {
				continue
			}
			v := row[i]
			if v.IsNull() || v.Kind() == relstore.TBlob {
				continue
			}
			prop, ok := m.Props[col]
			if !ok {
				prop = rdf.IRI(m.PropNS + col)
			}
			if g.Add(subj, prop, termFor(v)) {
				added++
			}
		}
	}
	return added, nil
}

func (m Mapping) subjectFor(g *rdf.Graph, row []relstore.Value, colIdx map[string]int) (rdf.Term, error) {
	if len(m.KeyCols) == 0 {
		return g.NewBlank(), nil
	}
	parts := make([]string, len(m.KeyCols))
	for i, k := range m.KeyCols {
		v := row[colIdx[strings.ToLower(k)]]
		if v.IsNull() {
			return nil, fmt.Errorf("mediator: NULL key in table %s", m.Table)
		}
		switch v.Kind() {
		case relstore.TText:
			parts[i] = v.Str()
		default:
			parts[i] = v.String()
		}
	}
	return rdf.IRI(m.SubjectPrefix + strings.Join(parts, "/")), nil
}

// termFor converts a relational value to an RDF literal.
func termFor(v relstore.Value) rdf.Term {
	switch v.Kind() {
	case relstore.TInt:
		return rdf.Integer(v.Int())
	case relstore.TFloat:
		return rdf.Float(v.Float())
	default:
		return rdf.String{Val: v.Str()}
	}
}
