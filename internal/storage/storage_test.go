package storage

import (
	"testing"
	"testing/quick"

	"scisparql/internal/array"
)

func seqArray(t *testing.T, n int) *array.Array {
	t.Helper()
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	a, err := array.FromFloats(data, n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestChunkElemsFor(t *testing.T) {
	if got := ChunkElemsFor(64 * 1024); got != 8192 {
		t.Fatalf("got %d", got)
	}
	if got := ChunkElemsFor(1); got != 1 {
		t.Fatalf("tiny chunk size should clamp to 1, got %d", got)
	}
}

func TestSplitChunks(t *testing.T) {
	payload := make([]byte, 100*array.ElemSize)
	chunks := SplitChunks(payload, 30)
	if len(chunks) != 4 {
		t.Fatalf("chunks %d", len(chunks))
	}
	if len(chunks[3]) != 10*array.ElemSize {
		t.Fatalf("final chunk %d bytes", len(chunks[3]))
	}
	if NumChunks(100, 30) != 4 {
		t.Fatal("NumChunks mismatch")
	}
}

func TestMemoryStoreOpenRoundTrip(t *testing.T) {
	m := NewMemory()
	a := seqArray(t, 1000)
	id, err := m.Store(a, 100)
	if err != nil {
		t.Fatal(err)
	}
	back, err := m.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := array.Equal(a, back)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("round trip mismatch")
	}
}

func TestMemoryOpenUnknown(t *testing.T) {
	m := NewMemory()
	if _, err := m.Open(42); err == nil {
		t.Fatal("expected error")
	}
	if err := m.Delete(42); err == nil {
		t.Fatal("expected error")
	}
}

func TestMemoryDelete(t *testing.T) {
	m := NewMemory()
	id, err := m.Store(seqArray(t, 10), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(id); err == nil {
		t.Fatal("deleted array should be gone")
	}
}

func TestMemoryAggregateCapable(t *testing.T) {
	m := NewMemory()
	id, err := m.Store(seqArray(t, 100), 16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	m.ReadCalls = 0
	sum, err := a.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Float() != 4950 {
		t.Fatalf("sum %v", sum)
	}
	if m.ReadCalls != 0 {
		t.Fatal("AAPR should not read chunks")
	}
}

func TestMemorySliceAccessCountsChunks(t *testing.T) {
	m := NewMemory()
	id, err := m.Store(seqArray(t, 1000), 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.Deref([]array.Range{array.Span(100, 200)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Materialize(); err != nil {
		t.Fatal(err)
	}
	if m.ChunksServed != 10 {
		t.Fatalf("served %d chunks, want 10", m.ChunksServed)
	}
}

func TestStoreDefaultChunkSize(t *testing.T) {
	m := NewMemory()
	id, err := m.Store(seqArray(t, 10), 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	if a.Base.Proxy.ChunkElems != ChunkElemsFor(DefaultChunkBytes) {
		t.Fatalf("chunk elems %d", a.Base.Proxy.ChunkElems)
	}
}

// Property: store/open round-trips arbitrary int vectors for any chunk
// size.
func TestMemoryRoundTripProperty(t *testing.T) {
	f := func(data []int64, chunk8 uint8) bool {
		if len(data) == 0 {
			return true
		}
		chunkElems := int(chunk8%32) + 1
		a, err := array.FromInts(append([]int64(nil), data...), len(data))
		if err != nil {
			return false
		}
		m := NewMemory()
		id, err := m.Store(a, chunkElems)
		if err != nil {
			return false
		}
		back, err := m.Open(id)
		if err != nil {
			return false
		}
		eq, err := array.Equal(a, back)
		return err == nil && eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
