// Package storage defines the Array Storage Extensibility Interface
// (ASEI, dissertation §6.1): the contract between SSDM's array proxies
// and pluggable array storage back-ends, together with the shared
// chunking scheme and an in-memory reference back-end.
//
// Arrays are split into one-dimensional chunks over the base array's
// row-major element order (§2.5); a back-end stores chunk payloads and
// serves them back by chunk number. The array-proxy-resolve (APR)
// machinery in package array asks for chunks in compact
// arithmetic-progression runs produced by the sequence pattern
// detector, and back-ends that can evaluate whole-array aggregates
// server-side advertise that through AggregateWhole (AAPR).
package storage

import (
	"context"
	"fmt"
	"sync"

	"scisparql/internal/array"
	"scisparql/internal/spd"
)

// DefaultChunkBytes is the default chunk payload size. The chunk size
// is the single storage tuning parameter (§2.5); Experiment 3 sweeps
// it.
const DefaultChunkBytes = 64 * 1024

// ChunkElemsFor converts a chunk size in bytes to whole elements.
func ChunkElemsFor(chunkBytes int) int {
	n := chunkBytes / array.ElemSize
	if n < 1 {
		n = 1
	}
	return n
}

// Backend is the ASEI: everything SSDM needs from an array storage
// system. It extends array.ChunkSource (lazy chunk reads and optional
// server-side aggregation) with array lifecycle operations.
type Backend interface {
	array.ChunkSource

	// Name identifies the back-end in diagnostics and benchmarks.
	Name() string

	// Store writes a materialized array and returns its back-end array
	// ID. chunkElems is the chunk size in elements (0 selects the
	// back-end default).
	Store(a *array.Array, chunkElems int) (int64, error)

	// Open returns a proxied array view over a stored array; no element
	// data is transferred until the view is dereferenced.
	Open(id int64) (*array.Array, error)

	// Delete removes a stored array.
	Delete(id int64) error
}

// SplitChunks cuts a raw element payload into chunk payloads of
// chunkElems elements (the final chunk may be short).
func SplitChunks(payload []byte, chunkElems int) [][]byte {
	chunkBytes := chunkElems * array.ElemSize
	var out [][]byte
	for off := 0; off < len(payload); off += chunkBytes {
		end := off + chunkBytes
		if end > len(payload) {
			end = len(payload)
		}
		out = append(out, payload[off:end])
	}
	return out
}

// NumChunks returns the chunk count for an element count.
func NumChunks(nelems, chunkElems int) int {
	return (nelems + chunkElems - 1) / chunkElems
}

// storedArray is the in-memory back-end's representation.
type storedArray struct {
	etype      array.ElemType
	shape      []int
	chunkElems int
	chunks     [][]byte
}

// Memory is the trivial ASEI implementation: chunks held in process
// memory. It is the reference back-end for tests and the baseline
// "resident" configuration of the mini-benchmark, and it supports
// server-side aggregation.
//
// Memory is safe for concurrent use: stored chunk payloads are
// immutable once written, so ReadChunks can serve many readers in
// parallel. Read the experiment counters through Stats when other
// goroutines may still be issuing reads.
type Memory struct {
	mu     sync.Mutex
	arrays map[int64]*storedArray
	nextID int64

	// Counters for experiments; guarded by mu (see Stats).
	ReadCalls    int64
	ChunksServed int64
	BytesServed  int64

	inflight InflightGauge
}

// NewMemory creates an empty in-memory back-end.
func NewMemory() *Memory {
	return &Memory{arrays: make(map[int64]*storedArray)}
}

// Name implements Backend.
func (m *Memory) Name() string { return "memory" }

// Store implements Backend.
func (m *Memory) Store(a *array.Array, chunkElems int) (int64, error) {
	if chunkElems <= 0 {
		chunkElems = ChunkElemsFor(DefaultChunkBytes)
	}
	mat, err := a.Materialize()
	if err != nil {
		return 0, err
	}
	payload, err := array.EncodeResident(mat.Base)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	id := m.nextID
	m.arrays[id] = &storedArray{
		etype:      mat.Etype(),
		shape:      append([]int(nil), mat.Shape...),
		chunkElems: chunkElems,
		chunks:     SplitChunks(payload, chunkElems),
	}
	return id, nil
}

func (m *Memory) get(id int64) (*storedArray, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sa, ok := m.arrays[id]
	if !ok {
		return nil, fmt.Errorf("storage: memory back-end has no array %d", id)
	}
	return sa, nil
}

// Open implements Backend.
func (m *Memory) Open(id int64) (*array.Array, error) {
	sa, err := m.get(id)
	if err != nil {
		return nil, err
	}
	return array.NewProxied(array.NewProxy(m, id, sa.chunkElems), sa.etype, sa.shape...)
}

// Delete implements Backend.
func (m *Memory) Delete(id int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.arrays[id]; !ok {
		return fmt.Errorf("storage: memory back-end has no array %d", id)
	}
	delete(m.arrays, id)
	return nil
}

// ReadChunks implements array.ChunkSource.
func (m *Memory) ReadChunks(arrayID int64, runs []spd.Run) (map[int][]byte, error) {
	out := make(map[int][]byte)
	err := m.ReadChunksCtx(context.Background(), arrayID, runs, func(chunkNo int, data []byte) error {
		out[chunkNo] = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReadChunksCtx implements array.ChunkSourceCtx. Chunks already live in
// process memory, so there is no latency to hide: payloads are emitted
// sequentially with a cancellation check per chunk. The inflight gauge
// tracks concurrent ReadChunksCtx calls (parallel queries), not worker
// fan-out.
func (m *Memory) ReadChunksCtx(ctx context.Context, arrayID int64, runs []spd.Run, emit func(chunkNo int, data []byte) error) error {
	m.inflight.Enter()
	defer m.inflight.Exit()
	sa, err := m.get(arrayID)
	if err != nil {
		return err
	}
	var served, bytes int64
	for _, c := range spd.Expand(runs) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if c < 0 || c >= len(sa.chunks) {
			return fmt.Errorf("storage: chunk %d out of range for array %d", c, arrayID)
		}
		served++
		bytes += int64(len(sa.chunks[c]))
		if err := emit(c, sa.chunks[c]); err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.ReadCalls++
	m.ChunksServed += served
	m.BytesServed += bytes
	m.mu.Unlock()
	return nil
}

// Stats returns a consistent snapshot of the experiment counters; use
// it instead of the fields when readers may still be running.
func (m *Memory) Stats() (readCalls, chunksServed, bytesServed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ReadCalls, m.ChunksServed, m.BytesServed
}

// InflightPeak returns the high-water mark of concurrent read calls.
func (m *Memory) InflightPeak() int64 { return m.inflight.Peak() }

// ReadCallCount returns the read-call counter under the lock — the
// uniform accessor metric exporters probe for across back-ends.
func (m *Memory) ReadCallCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ReadCalls
}

// AggregateWhole implements array.ChunkSource: the memory back-end is
// aggregation-capable.
func (m *Memory) AggregateWhole(arrayID int64) (*array.AggState, bool, error) {
	sa, err := m.get(arrayID)
	if err != nil {
		return nil, false, err
	}
	st := array.NewAggState()
	for _, chunk := range sa.chunks {
		for off := 0; off+array.ElemSize <= len(chunk); off += array.ElemSize {
			st.Add(array.DecodeElem(chunk[off:off+array.ElemSize], sa.etype))
		}
	}
	return st, true, nil
}
