package relbackend

import (
	"context"
	"sync"
	"testing"
	"time"

	"scisparql/internal/spd"
	"scisparql/internal/storage"
)

// readAll drains ReadChunksCtx into a map so its payloads can be
// compared against the blocking ReadChunks path.
func readAll(t *testing.T, b *Backend, id int64, runs []spd.Run) map[int][]byte {
	t.Helper()
	out := make(map[int][]byte)
	err := b.ReadChunksCtx(context.Background(), id, runs, func(chunkNo int, data []byte) error {
		out[chunkNo] = data
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReadChunksCtxMatchesReadChunksAllStrategies: the streaming read
// must return byte-identical chunks to the blocking read under every
// retrieval strategy (SINGLE = one statement per chunk, BUFFER =
// IN-lists, SPD = run descriptions), for contiguous, strided and
// mixed run sets.
func TestReadChunksCtxMatchesReadChunksAllStrategies(t *testing.T) {
	runSets := [][]spd.Run{
		{{Start: 0, Stride: 1, Count: 10}},
		{{Start: 2, Stride: 3, Count: 9}},
		{{Start: 0, Stride: 1, Count: 3}, {Start: 50, Stride: 5, Count: 6}, {Start: 99, Stride: 1, Count: 1}},
	}
	for _, strat := range []Strategy{StrategySingle, StrategyBuffered, StrategySPD} {
		t.Run(strat.String(), func(t *testing.T) {
			b := newBackend(t, strat)
			b.BufferSize = 4
			id, err := b.Store(seqArray(t, 1000), 10) // 100 chunks
			if err != nil {
				t.Fatal(err)
			}
			for _, runs := range runSets {
				blocking, err := b.ReadChunks(id, runs)
				if err != nil {
					t.Fatal(err)
				}
				streamed := readAll(t, b, id, runs)
				if len(streamed) != len(blocking) {
					t.Fatalf("runs %v: streamed %d chunks, blocking %d", runs, len(streamed), len(blocking))
				}
				for cn, want := range blocking {
					got, ok := streamed[cn]
					if !ok {
						t.Fatalf("runs %v: chunk %d missing from stream", runs, cn)
					}
					if string(got) != string(want) {
						t.Fatalf("runs %v: chunk %d payload differs", runs, cn)
					}
				}
			}
		})
	}
}

// TestReadChunksCtxStatementParity: streaming must not change how many
// SQL statements each strategy issues — windowed scheduling upstream
// cuts only at run boundaries precisely to preserve these counts.
func TestReadChunksCtxStatementParity(t *testing.T) {
	runs := []spd.Run{{Start: 0, Stride: 1, Count: 10}}
	want := map[Strategy]int64{StrategySingle: 10, StrategyBuffered: 3, StrategySPD: 1}
	for _, strat := range []Strategy{StrategySingle, StrategyBuffered, StrategySPD} {
		b := newBackend(t, strat)
		b.BufferSize = 4
		id, err := b.Store(seqArray(t, 1000), 10)
		if err != nil {
			t.Fatal(err)
		}
		b.DB.ResetStats()
		readAll(t, b, id, runs)
		if got := b.DB.StatsSnapshot().Statements; got != want[strat] {
			t.Fatalf("%s: streaming read issued %d statements, want %d", strat, got, want[strat])
		}
	}
}

// TestReadCallsAndInflightPeak: per-backend stats must record fetch
// calls, and the worker pool must actually overlap statements when the
// store has round-trip latency and the run set decomposes into
// multiple units.
func TestReadCallsAndInflightPeak(t *testing.T) {
	b := newBackend(t, StrategySingle) // one statement (= one unit) per chunk
	b.DB.RoundTripDelay = 200 * time.Microsecond
	id, err := b.Store(seqArray(t, 640), 10) // 64 chunks
	if err != nil {
		t.Fatal(err)
	}
	storage.SetParallelism(8)
	defer storage.SetParallelism(0)

	if got := b.ReadCalls(); got != 0 {
		t.Fatalf("fresh backend has %d read calls", got)
	}
	runs := []spd.Run{{Start: 0, Stride: 1, Count: 64}}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := make(map[int][]byte)
			err := b.ReadChunksCtx(context.Background(), id, runs, func(chunkNo int, data []byte) error {
				got[chunkNo] = data
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) != 64 {
				t.Errorf("got %d chunks, want 64", len(got))
			}
		}()
	}
	wg.Wait()
	if got := b.ReadCalls(); got != 4 {
		t.Fatalf("read calls = %d, want 4", got)
	}
	if peak := b.InflightPeak(); peak < 2 {
		t.Fatalf("inflight peak = %d; SINGLE units never overlapped", peak)
	}
}

// TestReadChunksCtxCancellationStopsStatements: a cancelled context
// must stop the statement pipeline early rather than running the full
// plan to completion.
func TestReadChunksCtxCancellationStopsStatements(t *testing.T) {
	b := newBackend(t, StrategySingle)
	id, err := b.Store(seqArray(t, 1000), 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = b.ReadChunksCtx(ctx, id, []spd.Run{{Start: 0, Stride: 1, Count: 100}}, func(int, []byte) error {
		return nil
	})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}
