package relbackend

import (
	"testing"

	"scisparql/internal/array"
	"scisparql/internal/relstore"
)

func newBackend(t *testing.T, strat Strategy) *Backend {
	t.Helper()
	b, err := New(relstore.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	b.Strategy = strat
	return b
}

func seqArray(t *testing.T, n int) *array.Array {
	t.Helper()
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	a, err := array.FromFloats(data, n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestStoreOpenRoundTripAllStrategies(t *testing.T) {
	for _, strat := range []Strategy{StrategySingle, StrategyBuffered, StrategySPD} {
		t.Run(strat.String(), func(t *testing.T) {
			b := newBackend(t, strat)
			a := seqArray(t, 500)
			id, err := b.Store(a, 50)
			if err != nil {
				t.Fatal(err)
			}
			back, err := b.Open(id)
			if err != nil {
				t.Fatal(err)
			}
			eq, err := array.Equal(a, back)
			if err != nil {
				t.Fatal(err)
			}
			if !eq {
				t.Fatal("round trip mismatch")
			}
		})
	}
}

func TestStrategyStatementCounts(t *testing.T) {
	// Access 10 contiguous chunks and compare statements issued.
	counts := map[Strategy]int64{}
	for _, strat := range []Strategy{StrategySingle, StrategyBuffered, StrategySPD} {
		b := newBackend(t, strat)
		b.BufferSize = 4
		id, err := b.Store(seqArray(t, 1000), 10) // 100 chunks
		if err != nil {
			t.Fatal(err)
		}
		a, err := b.Open(id)
		if err != nil {
			t.Fatal(err)
		}
		v, err := a.Deref([]array.Range{array.Span(0, 100)}) // chunks 0..9
		if err != nil {
			t.Fatal(err)
		}
		b.DB.ResetStats()
		if _, err := v.Materialize(); err != nil {
			t.Fatal(err)
		}
		counts[strat] = b.DB.StatsSnapshot().Statements
	}
	if counts[StrategySingle] != 10 {
		t.Fatalf("SINGLE issued %d statements, want 10", counts[StrategySingle])
	}
	if counts[StrategyBuffered] != 3 { // ceil(10/4)
		t.Fatalf("BUFFER issued %d statements, want 3", counts[StrategyBuffered])
	}
	if counts[StrategySPD] != 1 {
		t.Fatalf("SPD issued %d statements, want 1", counts[StrategySPD])
	}
}

func TestSPDStridedUsesModFilter(t *testing.T) {
	b := newBackend(t, StrategySPD)
	id, err := b.Store(seqArray(t, 1000), 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := b.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	// Every 3rd chunk: single BETWEEN + MOD statement, and exactly the
	// requested chunks return.
	v, err := a.Deref([]array.Range{array.SpanStep(0, 1000, 30)})
	if err != nil {
		t.Fatal(err)
	}
	b.DB.ResetStats()
	sum, err := v.Sum()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < 1000; i += 30 {
		want += float64(i)
	}
	if sum.Float() != want {
		t.Fatalf("sum %v want %v", sum, want)
	}
	st := b.DB.StatsSnapshot()
	if st.Statements != 1 {
		t.Fatalf("statements %d, want 1", st.Statements)
	}
	if st.RowsReturned != 34 { // chunks 0,3,...,99
		t.Fatalf("rows returned %d, want 34", st.RowsReturned)
	}
}

func TestAAPRDelegation(t *testing.T) {
	b := newBackend(t, StrategySPD)
	id, err := b.Store(seqArray(t, 10000), 100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := b.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	b.DB.ResetStats()
	sum, err := a.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Float() != float64(9999*10000/2) {
		t.Fatalf("sum %v", sum)
	}
	st := b.DB.StatsSnapshot()
	if st.Statements != 1 {
		t.Fatalf("statements %d, want 1 aggregate statement", st.Statements)
	}
	// Only the scalar row crossed the boundary, not megabytes of chunks.
	if st.BytesReturned > 1024 {
		t.Fatalf("bytes returned %d — aggregation was not delegated", st.BytesReturned)
	}
}

func TestAAPRDisabledFallsBack(t *testing.T) {
	b := newBackend(t, StrategySPD)
	b.Aggregable = false
	id, err := b.Store(seqArray(t, 1000), 100)
	if err != nil {
		t.Fatal(err)
	}
	a, err := b.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	b.DB.ResetStats()
	sum, err := a.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Float() != float64(999*1000/2) {
		t.Fatalf("sum %v", sum)
	}
	st := b.DB.StatsSnapshot()
	if st.BytesReturned < 1000*array.ElemSize {
		t.Fatalf("expected chunk transfer, got %d bytes", st.BytesReturned)
	}
}

func TestAAPRIntArray(t *testing.T) {
	b := newBackend(t, StrategySPD)
	data := make([]int64, 100)
	for i := range data {
		data[i] = int64(i)
	}
	a, err := array.FromInts(data, 100)
	if err != nil {
		t.Fatal(err)
	}
	id, err := b.Store(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	opened, err := b.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := opened.Sum()
	if err != nil {
		t.Fatal(err)
	}
	if sum.T != array.Int || sum.I != 4950 {
		t.Fatalf("sum %v", sum)
	}
	mn, _ := opened.Min()
	mx, _ := opened.Max()
	if mn.Intval() != 0 || mx.Intval() != 99 {
		t.Fatalf("min %v max %v", mn, mx)
	}
}

func TestDeleteRemovesArray(t *testing.T) {
	b := newBackend(t, StrategySPD)
	id, err := b.Store(seqArray(t, 100), 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(id); err != nil {
		t.Fatal(err)
	}
	if n, _ := b.DB.TableSize("chunks"); n != 0 {
		t.Fatalf("chunks left: %d", n)
	}
	if err := b.Delete(id); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestMetaSurvivesCacheDrop(t *testing.T) {
	b := newBackend(t, StrategySPD)
	id, err := b.Store(seqArray(t, 100), 10)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a fresh SSDM process: metadata cache is cold, so Open
	// must consult the arrays table.
	b.metas = map[int64]*meta{}
	a, err := b.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	if a.Count() != 100 {
		t.Fatalf("count %d", a.Count())
	}
	if _, err := b.Open(999); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestShapeTextRoundTrip(t *testing.T) {
	shape := []int{3, 4, 5}
	back, err := textToShape(shapeToText(shape))
	if err != nil {
		t.Fatal(err)
	}
	if !array.ShapeEqual(shape, back) {
		t.Fatalf("got %v", back)
	}
	if _, err := textToShape("3xbad"); err == nil {
		t.Fatal("corrupt shape should fail")
	}
}
