// Package relbackend is the RDBMS-based ASEI back-end of SSDM
// (dissertation §6.2): array metadata and chunk payloads live in
// relational tables, and every interaction is an SQL statement against
// the (embedded, but SQL-text-addressed) relational store.
//
// The storage schema (§6.2.1) is:
//
//	arrays (aid INT PRIMARY KEY, etype INT, ndims INT, shape TEXT, chunk_elems INT)
//	chunks (aid INT, cno INT, data BLOB, PRIMARY KEY (aid, cno))
//
// The three strategies for formulating SQL during array-proxy
// resolution (§6.2.3) are:
//
//	StrategySingle   — one SELECT per chunk; the naive worst case.
//	StrategyBuffered — chunk numbers buffered and fetched with IN
//	                   lists of at most BufferSize entries (§6.2.4,
//	                   "resolving bags of array proxies").
//	StrategySPD      — the sequence-pattern-detector runs become
//	                   BETWEEN range queries, with a MOD stride filter
//	                   for non-contiguous progressions (§6.2.5).
package relbackend

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"scisparql/internal/array"
	"scisparql/internal/relstore"
	"scisparql/internal/spd"
	"scisparql/internal/storage"
)

// Strategy selects how chunk retrieval SQL is formulated.
type Strategy uint8

const (
	StrategySingle Strategy = iota
	StrategyBuffered
	StrategySPD
)

func (s Strategy) String() string {
	switch s {
	case StrategySingle:
		return "SQL-SINGLE"
	case StrategyBuffered:
		return "SQL-BUFFER"
	case StrategySPD:
		return "SQL-SPD"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Backend stores arrays in a relational database.
type Backend struct {
	DB       *relstore.Database
	Strategy Strategy

	// BufferSize bounds the number of chunk numbers per IN list for
	// StrategyBuffered (Experiment 2 sweeps it). Zero means 256.
	BufferSize int

	// Aggregable enables AAPR delegation via the ELEM* SQL aggregate
	// UDFs; disable to model a back-end without installed UDFs.
	Aggregable bool

	mu     sync.Mutex
	nextID int64
	metas  map[int64]*meta

	readCalls atomic.Int64
	inflight  storage.InflightGauge
}

type meta struct {
	etype      array.ElemType
	shape      []int
	chunkElems int
}

// New creates the backend and its storage schema inside db.
func New(db *relstore.Database) (*Backend, error) {
	b := &Backend{DB: db, Strategy: StrategySPD, BufferSize: 256, Aggregable: true, metas: map[int64]*meta{}}
	stmts := []string{
		`CREATE TABLE arrays (aid INT, etype INT, ndims INT, shape TEXT, chunk_elems INT, PRIMARY KEY (aid))`,
		`CREATE TABLE chunks (aid INT, cno INT, data BLOB, PRIMARY KEY (aid, cno))`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Name implements storage.Backend.
func (b *Backend) Name() string { return "sql/" + b.Strategy.String() }

// Store implements storage.Backend: metadata row plus one INSERT per
// chunk (§6.2.2, data loading).
func (b *Backend) Store(a *array.Array, chunkElems int) (int64, error) {
	if chunkElems <= 0 {
		chunkElems = storage.ChunkElemsFor(storage.DefaultChunkBytes)
	}
	mat, err := a.Materialize()
	if err != nil {
		return 0, err
	}
	payload, err := array.EncodeResident(mat.Base)
	if err != nil {
		return 0, err
	}
	b.mu.Lock()
	b.nextID++
	id := b.nextID
	b.mu.Unlock()

	shapeStr := shapeToText(mat.Shape)
	_, err = b.DB.Exec(`INSERT INTO arrays VALUES (?, ?, ?, ?, ?)`,
		relstore.I64(id), relstore.I64(int64(mat.Etype())), relstore.I64(int64(len(mat.Shape))),
		relstore.Text(shapeStr), relstore.I64(int64(chunkElems)))
	if err != nil {
		return 0, err
	}
	for cno, chunk := range storage.SplitChunks(payload, chunkElems) {
		_, err := b.DB.Exec(`INSERT INTO chunks VALUES (?, ?, ?)`,
			relstore.I64(id), relstore.I64(int64(cno)), relstore.Blob(chunk))
		if err != nil {
			return 0, err
		}
	}
	b.mu.Lock()
	b.metas[id] = &meta{etype: mat.Etype(), shape: append([]int(nil), mat.Shape...), chunkElems: chunkElems}
	b.mu.Unlock()
	return id, nil
}

func shapeToText(shape []int) string {
	parts := make([]string, len(shape))
	for i, s := range shape {
		parts[i] = strconv.Itoa(s)
	}
	return strings.Join(parts, "x")
}

func textToShape(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("relbackend: corrupt shape %q", s)
		}
		out[i] = v
	}
	return out, nil
}

func (b *Backend) meta(id int64) (*meta, error) {
	b.mu.Lock()
	if m, ok := b.metas[id]; ok {
		b.mu.Unlock()
		return m, nil
	}
	b.mu.Unlock()
	res, err := b.DB.Exec(`SELECT etype, shape, chunk_elems FROM arrays WHERE aid = ?`, relstore.I64(id))
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("relbackend: no array %d", id)
	}
	row := res.Rows[0]
	shape, err := textToShape(row[1].Str())
	if err != nil {
		return nil, err
	}
	m := &meta{etype: array.ElemType(row[0].Int()), shape: shape, chunkElems: int(row[2].Int())}
	b.mu.Lock()
	b.metas[id] = m
	b.mu.Unlock()
	return m, nil
}

// Open implements storage.Backend.
func (b *Backend) Open(id int64) (*array.Array, error) {
	m, err := b.meta(id)
	if err != nil {
		return nil, err
	}
	return array.NewProxied(array.NewProxy(b, id, m.chunkElems), m.etype, m.shape...)
}

// Delete implements storage.Backend.
func (b *Backend) Delete(id int64) error {
	if _, err := b.DB.Exec(`DELETE FROM chunks WHERE aid = ?`, relstore.I64(id)); err != nil {
		return err
	}
	res, err := b.DB.Exec(`DELETE FROM arrays WHERE aid = ?`, relstore.I64(id))
	if err != nil {
		return err
	}
	if res.RowsAffected == 0 {
		return fmt.Errorf("relbackend: no array %d", id)
	}
	b.mu.Lock()
	delete(b.metas, id)
	b.mu.Unlock()
	return nil
}

// ReadChunks implements array.ChunkSource by formulating SQL according
// to the configured strategy.
func (b *Backend) ReadChunks(arrayID int64, runs []spd.Run) (map[int][]byte, error) {
	out := make(map[int][]byte)
	err := b.ReadChunksCtx(context.Background(), arrayID, runs, func(chunkNo int, data []byte) error {
		out[chunkNo] = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// unitStmt is the SQL of one retrieval unit under the strategy: a
// per-chunk point SELECT (SINGLE and SPD singletons), an IN list
// (BUFFER), or a BETWEEN range with an optional MOD stride filter
// (SPD).
type unitStmt struct {
	sql    string
	params []relstore.Value
}

// ReadChunksCtx implements array.ChunkSourceCtx. Retrieval units —
// one statement under the strategy's formulation rules — execute
// concurrently on up to storage.Parallelism() workers, so independent
// statement round trips overlap and row decoding of one result set
// proceeds while other statements are still on the simulated wire.
// Cancelling ctx stops issuing further statements within one unit.
func (b *Backend) ReadChunksCtx(ctx context.Context, arrayID int64, runs []spd.Run, emit func(chunkNo int, data []byte) error) error {
	b.readCalls.Add(1)
	aid := relstore.I64(arrayID)
	var units []unitStmt
	switch b.Strategy {
	case StrategySingle:
		for _, c := range spd.Expand(runs) {
			units = append(units, unitStmt{
				sql:    `SELECT cno, data FROM chunks WHERE aid = ? AND cno = ?`,
				params: []relstore.Value{aid, relstore.I64(int64(c))},
			})
		}
	case StrategyBuffered:
		bufSize := b.BufferSize
		if bufSize <= 0 {
			bufSize = 256
		}
		all := spd.Expand(runs)
		for lo := 0; lo < len(all); lo += bufSize {
			hi := lo + bufSize
			if hi > len(all) {
				hi = len(all)
			}
			batch := all[lo:hi]
			placeholders := strings.Repeat("?, ", len(batch)-1) + "?"
			params := make([]relstore.Value, 0, len(batch)+1)
			params = append(params, aid)
			for _, c := range batch {
				params = append(params, relstore.I64(int64(c)))
			}
			units = append(units, unitStmt{
				sql:    `SELECT cno, data FROM chunks WHERE aid = ? AND cno IN (` + placeholders + `)`,
				params: params,
			})
		}
	case StrategySPD:
		for _, r := range runs {
			switch {
			case r.Count == 1:
				units = append(units, unitStmt{
					sql:    `SELECT cno, data FROM chunks WHERE aid = ? AND cno = ?`,
					params: []relstore.Value{aid, relstore.I64(int64(r.Start))},
				})
			case r.Stride == 1:
				units = append(units, unitStmt{
					sql:    `SELECT cno, data FROM chunks WHERE aid = ? AND cno BETWEEN ? AND ?`,
					params: []relstore.Value{aid, relstore.I64(int64(r.Start)), relstore.I64(int64(r.Last()))},
				})
			default:
				units = append(units, unitStmt{
					sql: `SELECT cno, data FROM chunks WHERE aid = ? AND cno BETWEEN ? AND ? AND MOD(cno - ?, ?) = 0`,
					params: []relstore.Value{aid, relstore.I64(int64(r.Start)), relstore.I64(int64(r.Last())),
						relstore.I64(int64(r.Start)), relstore.I64(int64(r.Stride))},
				})
			}
		}
	default:
		return fmt.Errorf("relbackend: unknown strategy %v", b.Strategy)
	}

	return storage.RunUnits(ctx, len(units), &b.inflight, func(_ context.Context, i int) ([]storage.Chunk, error) {
		res, err := b.DB.Exec(units[i].sql, units[i].params...)
		if err != nil {
			return nil, err
		}
		chunks := make([]storage.Chunk, 0, len(res.Rows))
		for _, row := range res.Rows {
			chunks = append(chunks, storage.Chunk{No: int(row[0].Int()), Data: row[1].Bytes()})
		}
		return chunks, nil
	}, emit)
}

// ReadCalls returns how many chunk-retrieval calls the back-end served
// (each may span many SQL statements; see the database's Statements
// counter for those).
func (b *Backend) ReadCalls() int64 { return b.readCalls.Load() }

// ReadCallCount is ReadCalls under the uniform accessor name metric
// exporters probe for across back-ends.
func (b *Backend) ReadCallCount() int64 { return b.ReadCalls() }

// InflightPeak returns the high-water mark of concurrently in-flight
// retrieval statements, verifying the worker pool's fan-out.
func (b *Backend) InflightPeak() int64 { return b.inflight.Peak() }

// AggregateWhole implements array.ChunkSource: when the ELEM* UDFs are
// available, whole-array aggregates are computed inside the database
// and only the scalar results cross the boundary (AAPR, §6.1).
func (b *Backend) AggregateWhole(arrayID int64) (*array.AggState, bool, error) {
	if !b.Aggregable {
		return nil, false, nil
	}
	m, err := b.meta(arrayID)
	if err != nil {
		return nil, false, err
	}
	suffix := "F"
	if m.etype == array.Int {
		suffix = "I"
	}
	sql := fmt.Sprintf(
		`SELECT ELEMCNT(data), ELEMSUM%[1]s(data), ELEMMIN%[1]s(data), ELEMMAX%[1]s(data) FROM chunks WHERE aid = ?`,
		suffix)
	res, err := b.DB.Exec(sql, relstore.I64(arrayID))
	if err != nil {
		return nil, false, err
	}
	row := res.Rows[0]
	st := array.NewAggState()
	st.Count = int(row[0].Int())
	if st.Count == 0 {
		return st, true, nil
	}
	st.SumF = row[1].Float()
	st.SumI = row[1].Int()
	st.AllInt = m.etype == array.Int
	st.Min = row[2].Float()
	st.MinI = row[2].Int()
	st.Max = row[3].Float()
	st.MaxI = row[3].Int()
	return st, true, nil
}
