package storage

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxParallelism caps the fetch worker pool regardless of GOMAXPROCS:
// chunk retrieval is latency-bound, and beyond a modest fan-out the
// extra workers only add scheduling and memory pressure.
const MaxParallelism = 16

// parallelism is the configured worker count; 0 selects the default.
var parallelism atomic.Int32

// Parallelism returns the number of concurrent fetch workers a
// back-end may use per retrieval (the bound on in-flight preads or SQL
// statements during one ReadChunksCtx call). The default is
// GOMAXPROCS capped at MaxParallelism; SetParallelism overrides it.
func Parallelism() int {
	if v := parallelism.Load(); v > 0 {
		return int(v)
	}
	n := runtime.GOMAXPROCS(0)
	if n > MaxParallelism {
		n = MaxParallelism
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetParallelism sets the fetch worker bound for all back-ends.
// n <= 0 restores the default. Values above MaxParallelism are capped.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	if n > MaxParallelism {
		n = MaxParallelism
	}
	parallelism.Store(int32(n))
}

// Chunk is one fetched chunk payload, the unit a fetch unit returns.
type Chunk struct {
	No   int
	Data []byte
}

// InflightGauge tracks how many fetch units a back-end has in flight,
// and the high-water mark, so experiments can verify that the worker
// pool actually fans out.
type InflightGauge struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// Enter marks one unit in flight and updates the peak.
func (g *InflightGauge) Enter() {
	if g == nil {
		return
	}
	cur := g.cur.Add(1)
	for {
		p := g.peak.Load()
		if cur <= p || g.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// Exit marks one unit done.
func (g *InflightGauge) Exit() {
	if g == nil {
		return
	}
	g.cur.Add(-1)
}

// Peak returns the high-water mark of concurrently in-flight units.
func (g *InflightGauge) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// RunUnits executes n independent fetch units on a bounded worker pool
// and delivers every fetched chunk to emit. fetch runs on pool workers
// (concurrently, in any order); emit runs only on the calling
// goroutine, serially, in unit arrival order. The first error — from
// fetch, emit, or ctx — cancels the remaining work; RunUnits does not
// return until every worker has exited, so no goroutines leak.
//
// The pool width is min(Parallelism(), n); with a width of one the
// units run inline on the caller with no goroutines at all.
func RunUnits(ctx context.Context, n int, g *InflightGauge, fetch func(ctx context.Context, unit int) ([]Chunk, error), emit func(chunkNo int, data []byte) error) error {
	if n <= 0 {
		return nil
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			g.Enter()
			chunks, err := fetch(ctx, i)
			g.Exit()
			if err != nil {
				return err
			}
			for _, c := range chunks {
				if err := emit(c.No, c.Data); err != nil {
					return err
				}
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	units := make(chan int)
	results := make(chan []Chunk, workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range units {
				g.Enter()
				chunks, err := fetch(wctx, i)
				g.Exit()
				if err != nil {
					errs <- err
					cancel()
					return
				}
				select {
				case results <- chunks:
				case <-wctx.Done():
					return
				}
			}
		}()
	}
	// Feed unit indices until done or cancelled.
	go func() {
		defer close(units)
		for i := 0; i < n; i++ {
			select {
			case units <- i:
			case <-wctx.Done():
				return
			}
		}
	}()
	// Close results once every worker has exited so the drain loop
	// below terminates.
	go func() {
		wg.Wait()
		close(results)
	}()

	var firstErr error
	for chunks := range results {
		if firstErr != nil {
			continue // drain after failure
		}
		for _, c := range chunks {
			if err := emit(c.No, c.Data); err != nil {
				firstErr = err
				cancel()
				break
			}
		}
	}
	if firstErr != nil {
		return firstErr
	}
	select {
	case err := <-errs:
		return err
	default:
	}
	return ctx.Err()
}
