package filestore

import (
	"testing"
	"testing/quick"

	"scisparql/internal/array"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func seqArray(t *testing.T, shape ...int) *array.Array {
	t.Helper()
	n := array.Prod(shape)
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i) * 1.5
	}
	a, err := array.FromFloats(data, shape...)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestStoreOpenRoundTrip(t *testing.T) {
	s := newStore(t)
	a := seqArray(t, 20, 30)
	id, err := s.Store(a, 64)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	if !array.ShapeEqual(back.Shape, []int{20, 30}) {
		t.Fatalf("shape %v", back.Shape)
	}
	eq, err := array.Equal(a, back)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("round trip mismatch")
	}
}

func TestOpenMissing(t *testing.T) {
	s := newStore(t)
	if _, err := s.Open(99); err == nil {
		t.Fatal("expected error")
	}
}

func TestDelete(t *testing.T) {
	s := newStore(t)
	id, err := s.Store(seqArray(t, 10), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(id); err == nil {
		t.Fatal("deleted array should be gone")
	}
	if err := s.Delete(id); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestContiguousRunsReadOnce(t *testing.T) {
	s := newStore(t)
	id, err := s.Store(seqArray(t, 1000), 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.Deref([]array.Range{array.Span(0, 500)})
	if err != nil {
		t.Fatal(err)
	}
	s.ReadCalls = 0
	if _, err := v.Materialize(); err != nil {
		t.Fatal(err)
	}
	if s.ReadCalls != 1 {
		t.Fatalf("read calls %d, want 1 (sequential run)", s.ReadCalls)
	}
}

func TestStridedRunsReadPerChunk(t *testing.T) {
	s := newStore(t)
	id, err := s.Store(seqArray(t, 1000), 10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	// Touch every 5th chunk.
	v, err := a.Deref([]array.Range{array.SpanStep(0, 1000, 50)})
	if err != nil {
		t.Fatal(err)
	}
	s.ReadCalls = 0
	got, err := v.Sum()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i := 0; i < 1000; i += 50 {
		want += float64(i) * 1.5
	}
	if got.Float() != want {
		t.Fatalf("sum %v, want %v", got, want)
	}
	if s.ReadCalls != 20 {
		t.Fatalf("read calls %d, want 20", s.ReadCalls)
	}
}

func TestAggregateNotCapable(t *testing.T) {
	s := newStore(t)
	if _, ok, err := s.AggregateWhole(1); ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestShortFinalChunk(t *testing.T) {
	s := newStore(t)
	a := seqArray(t, 95)
	id, err := s.Store(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	v, err := back.At(94)
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 94*1.5 {
		t.Fatalf("got %v", v)
	}
}

func TestIDNumberingSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := s1.Store(seqArray(t, 10), 4)
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()
	s2, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Old array is still readable.
	if _, err := s2.Open(id1); err != nil {
		t.Fatal(err)
	}
	id2, err := s2.Store(seqArray(t, 10), 4)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id1 {
		t.Fatal("IDs must not be reused across reopen")
	}
}

// Property: file round trip preserves arbitrary 2-D shapes.
func TestFileRoundTripProperty(t *testing.T) {
	s := newStore(t)
	f := func(rows8, cols8, chunk8 uint8) bool {
		rows := int(rows8%10) + 1
		cols := int(cols8%10) + 1
		chunkElems := int(chunk8%20) + 1
		n := rows * cols
		data := make([]int64, n)
		for i := range data {
			data[i] = int64(i * 7)
		}
		a, err := array.FromInts(data, rows, cols)
		if err != nil {
			return false
		}
		id, err := s.Store(a, chunkElems)
		if err != nil {
			return false
		}
		back, err := s.Open(id)
		if err != nil {
			return false
		}
		eq, err := array.Equal(a, back)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
