package filestore

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"scisparql/internal/array"
	"scisparql/internal/spd"
	"scisparql/internal/storage"
)

// intArray builds a resident int array where element e holds e.
func intArray(t *testing.T, n int) *array.Array {
	t.Helper()
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	a, err := array.FromInts(data, n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func checkChunks(t *testing.T, got map[int][]byte, chunkElems int, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d chunks, want %d", len(got), len(want))
	}
	for _, cn := range want {
		data, ok := got[cn]
		if !ok {
			t.Fatalf("chunk %d missing", cn)
		}
		for e := 0; e*array.ElemSize < len(data); e++ {
			v := int64(binary.LittleEndian.Uint64(data[e*array.ElemSize:]))
			if v != int64(cn*chunkElems+e) {
				t.Fatalf("chunk %d elem %d = %d, want %d", cn, e, v, cn*chunkElems+e)
			}
		}
	}
}

// TestReadChunksCtxMatchesReadChunks: the streaming context read and
// the blocking map read return identical payloads, for contiguous,
// strided and mixed run sets, with and without per-request latency
// (which switches between coalesced and per-chunk read units).
func TestReadChunksCtxMatchesReadChunks(t *testing.T) {
	const chunkElems = 16
	s := newStore(t)
	id, err := s.Store(intArray(t, 40*chunkElems), chunkElems)
	if err != nil {
		t.Fatal(err)
	}
	runSets := [][]spd.Run{
		{{Start: 0, Stride: 1, Count: 10}},
		{{Start: 1, Stride: 3, Count: 8}},
		{{Start: 0, Stride: 1, Count: 4}, {Start: 20, Stride: 2, Count: 5}, {Start: 39, Stride: 1, Count: 1}},
	}
	for _, latency := range []time.Duration{0, 50 * time.Microsecond} {
		s.SimulatedLatency = latency
		for _, runs := range runSets {
			want := spd.Expand(runs)
			blocking, err := s.ReadChunks(id, runs)
			if err != nil {
				t.Fatalf("latency %v runs %v: %v", latency, runs, err)
			}
			checkChunks(t, blocking, chunkElems, want)

			streamed := make(map[int][]byte)
			err = s.ReadChunksCtx(context.Background(), id, runs, func(chunkNo int, data []byte) error {
				streamed[chunkNo] = data
				return nil
			})
			if err != nil {
				t.Fatalf("latency %v runs %v: %v", latency, runs, err)
			}
			checkChunks(t, streamed, chunkElems, want)
		}
	}
}

// TestConcurrentInterleavedReads: many goroutines issue interleaved,
// overlapping run sets against the same shared file handle. Positioned
// reads must never cross-contaminate; every caller sees its own chunks
// intact. Run with -race in CI.
func TestConcurrentInterleavedReads(t *testing.T) {
	const chunkElems = 8
	const nchunks = 64
	s := newStore(t)
	s.SimulatedLatency = 20 * time.Microsecond // per-chunk units + worker pool
	id, err := s.Store(intArray(t, nchunks*chunkElems), chunkElems)
	if err != nil {
		t.Fatal(err)
	}
	storage.SetParallelism(8)
	defer storage.SetParallelism(0)

	runSets := [][]spd.Run{
		{{Start: 0, Stride: 2, Count: 32}},  // even chunks
		{{Start: 1, Stride: 2, Count: 32}},  // odd chunks (interleaved)
		{{Start: 0, Stride: 1, Count: 64}},  // everything
		{{Start: 5, Stride: 7, Count: 8}},   // sparse stride
		{{Start: 60, Stride: 1, Count: 4}},  // tail
	}
	const loops = 10
	var wg sync.WaitGroup
	errs := make(chan error, len(runSets)*loops)
	for li := 0; li < loops; li++ {
		for _, runs := range runSets {
			wg.Add(1)
			go func(runs []spd.Run) {
				defer wg.Done()
				got := make(map[int][]byte)
				err := s.ReadChunksCtx(context.Background(), id, runs, func(chunkNo int, data []byte) error {
					got[chunkNo] = data
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
				want := spd.Expand(runs)
				if len(got) != len(want) {
					errs <- fmt.Errorf("got %d chunks, want %d", len(got), len(want))
					return
				}
				for _, cn := range want {
					data := got[cn]
					for e := 0; e*array.ElemSize < len(data); e++ {
						v := int64(binary.LittleEndian.Uint64(data[e*array.ElemSize:]))
						if v != int64(cn*chunkElems+e) {
							errs <- fmt.Errorf("chunk %d elem %d = %d, want %d", cn, e, v, cn*chunkElems+e)
							return
						}
					}
				}
			}(runs)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent read corrupted or failed: %v", err)
	}
	if peak := s.InflightPeak(); peak < 2 {
		t.Fatalf("inflight peak = %d; worker pool never overlapped reads", peak)
	}
}

// TestReadChunksCtxCancellation: a cancelled context stops the unit
// pipeline with the context's error.
func TestReadChunksCtxCancellation(t *testing.T) {
	const chunkElems = 8
	s := newStore(t)
	id, err := s.Store(intArray(t, 64*chunkElems), chunkElems)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.ReadChunksCtx(ctx, id, []spd.Run{{Start: 0, Stride: 1, Count: 64}}, func(int, []byte) error {
		return nil
	})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
}
