// Package filestore is the binary-file ASEI back-end: each array lives
// in its own chunked binary file under a directory. It realizes the
// file-link scenario of the dissertation (§2.5, §5.3.1, §7): massive
// numeric data stays in files — as it does for Matlab .mat-file users —
// while SSDM's RDF graph holds proxies; chunking and caching beyond the
// proxy cache is left to the OS page cache, exactly as the text
// describes.
package filestore

import (
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"scisparql/internal/array"
	"scisparql/internal/spd"
	"scisparql/internal/storage"
)

const magic = uint32(0x53534d41) // "SSMA"

// header layout: magic u32, etype u8, pad u8, ndims u16, chunkElems
// u32, shape i64 * ndims, then the raw element payload.
func headerSize(ndims int) int64 { return 4 + 1 + 1 + 2 + 4 + 8*int64(ndims) }

// Store is a directory-backed array store. It is safe for concurrent
// readers: chunk reads are positioned reads (pread) on shared file
// handles, which the OS serves concurrently. Read the experiment
// counters through Stats when other goroutines may still be reading.
type Store struct {
	dir string

	// SimulatedLatency, when positive, charges this much wall-clock
	// latency to every physical read request, modeling a store where
	// each chunk fetch is a network round trip (NFS, object storage)
	// rather than a page-cache hit. With it set, contiguous runs are
	// *not* coalesced into one pread — each chunk is an independent
	// request, as it would be against a chunk-per-object store — which
	// is what gives the fetch worker pool latency to hide. Set it
	// before the store is shared.
	SimulatedLatency time.Duration

	mu     sync.Mutex
	nextID int64
	open   map[int64]*os.File

	// Counters for experiments; guarded by mu (see Stats).
	ReadCalls int64
	BytesRead int64

	inflight storage.InflightGauge
}

// New creates (or reuses) a directory-backed store. Existing array
// files in dir remain addressable if their IDs are known.
func New(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, open: map[int64]*os.File{}}
	// Continue ID numbering after any existing files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		var id int64
		if _, err := fmt.Sscanf(e.Name(), "a%d.ssdm", &id); err == nil && id > s.nextID {
			s.nextID = id
		}
	}
	return s, nil
}

// Name implements storage.Backend.
func (s *Store) Name() string { return "file" }

func (s *Store) path(id int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("a%d.ssdm", id))
}

// Store implements storage.Backend: it writes header + payload.
func (s *Store) Store(a *array.Array, chunkElems int) (int64, error) {
	if chunkElems <= 0 {
		chunkElems = 64 * 1024 / array.ElemSize
	}
	mat, err := a.Materialize()
	if err != nil {
		return 0, err
	}
	payload, err := array.EncodeResident(mat.Base)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.mu.Unlock()

	buf := make([]byte, headerSize(len(mat.Shape)))
	binary.LittleEndian.PutUint32(buf[0:], magic)
	buf[4] = byte(mat.Etype())
	binary.LittleEndian.PutUint16(buf[6:], uint16(len(mat.Shape)))
	binary.LittleEndian.PutUint32(buf[8:], uint32(chunkElems))
	for d, ext := range mat.Shape {
		binary.LittleEndian.PutUint64(buf[12+8*d:], uint64(ext))
	}
	f, err := os.Create(s.path(id))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Write(buf); err != nil {
		return 0, err
	}
	if _, err := f.Write(payload); err != nil {
		return 0, err
	}
	return id, nil
}

type fileMeta struct {
	etype      array.ElemType
	shape      []int
	chunkElems int
	dataOff    int64
	nelems     int
}

func (s *Store) file(id int64) (*os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.open[id]; ok {
		return f, nil
	}
	f, err := os.Open(s.path(id))
	if err != nil {
		return nil, fmt.Errorf("filestore: array %d: %w", id, err)
	}
	s.open[id] = f
	return f, nil
}

func (s *Store) meta(id int64) (*fileMeta, error) {
	f, err := s.file(id)
	if err != nil {
		return nil, err
	}
	head := make([]byte, 12)
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("filestore: array %d: short header: %w", id, err)
	}
	if binary.LittleEndian.Uint32(head[0:]) != magic {
		return nil, fmt.Errorf("filestore: array %d: bad magic", id)
	}
	etype := array.ElemType(head[4])
	ndims := int(binary.LittleEndian.Uint16(head[6:]))
	chunkElems := int(binary.LittleEndian.Uint32(head[8:]))
	if ndims == 0 || chunkElems <= 0 {
		return nil, fmt.Errorf("filestore: array %d: corrupt header", id)
	}
	shapeBuf := make([]byte, 8*ndims)
	if _, err := f.ReadAt(shapeBuf, 12); err != nil {
		return nil, fmt.Errorf("filestore: array %d: short shape: %w", id, err)
	}
	shape := make([]int, ndims)
	n := 1
	for d := range shape {
		shape[d] = int(binary.LittleEndian.Uint64(shapeBuf[8*d:]))
		n *= shape[d]
	}
	return &fileMeta{
		etype:      etype,
		shape:      shape,
		chunkElems: chunkElems,
		dataOff:    headerSize(ndims),
		nelems:     n,
	}, nil
}

// Open implements storage.Backend.
func (s *Store) Open(id int64) (*array.Array, error) {
	m, err := s.meta(id)
	if err != nil {
		return nil, err
	}
	return array.NewProxied(array.NewProxy(s, id, m.chunkElems), m.etype, m.shape...)
}

// Delete implements storage.Backend.
func (s *Store) Delete(id int64) error {
	s.mu.Lock()
	if f, ok := s.open[id]; ok {
		f.Close()
		delete(s.open, id)
	}
	s.mu.Unlock()
	return os.Remove(s.path(id))
}

// Stats returns a consistent snapshot of the experiment counters; use
// it instead of the fields when readers may still be running.
func (s *Store) Stats() (readCalls, bytesRead int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ReadCalls, s.BytesRead
}

// ReadCallCount returns the read-call counter under the lock — the
// uniform accessor metric exporters probe for across back-ends.
func (s *Store) ReadCallCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ReadCalls
}

// Close releases all cached file handles.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for id, f := range s.open {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(s.open, id)
	}
	return first
}

// ReadChunks implements array.ChunkSource with positioned reads.
func (s *Store) ReadChunks(arrayID int64, runs []spd.Run) (map[int][]byte, error) {
	out := make(map[int][]byte)
	err := s.ReadChunksCtx(context.Background(), arrayID, runs, func(chunkNo int, data []byte) error {
		out[chunkNo] = data
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// readUnit is one physical read request: a span of count consecutive
// chunks starting at chunk start (count 1 for strided access).
type readUnit struct {
	start, count int
}

// ReadChunksCtx implements array.ChunkSourceCtx. The runs are cut into
// read units — one pread per contiguous run, one per chunk when runs
// are strided or SimulatedLatency models per-request cost — and the
// units are issued concurrently by up to storage.Parallelism() workers
// sharing the array's file handle via ReadAt, which is safe and
// position-independent. Payloads are emitted serially on the calling
// goroutine; cancelling ctx stops the in-flight workers.
func (s *Store) ReadChunksCtx(ctx context.Context, arrayID int64, runs []spd.Run, emit func(chunkNo int, data []byte) error) error {
	m, err := s.meta(arrayID)
	if err != nil {
		return err
	}
	f, err := s.file(arrayID)
	if err != nil {
		return err
	}
	chunkBytes := m.chunkElems * array.ElemSize
	totalBytes := m.nelems * array.ElemSize

	var units []readUnit
	for _, r := range runs {
		switch {
		case r.Stride == 1 && r.Count > 1 && s.SimulatedLatency <= 0:
			units = append(units, readUnit{start: r.Start, count: r.Count})
		default:
			for _, c := range r.Expand(nil) {
				units = append(units, readUnit{start: c, count: 1})
			}
		}
	}

	return storage.RunUnits(ctx, len(units), &s.inflight, func(ctx context.Context, i int) ([]storage.Chunk, error) {
		u := units[i]
		off := u.start * chunkBytes
		if off >= totalBytes {
			return nil, fmt.Errorf("filestore: chunk %d out of range for array %d", u.start, arrayID)
		}
		n := u.count * chunkBytes
		if off+n > totalBytes {
			n = totalBytes - off
		}
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, m.dataOff+int64(off)); err != nil {
			return nil, err
		}
		simulateLatency(s.SimulatedLatency)
		s.mu.Lock()
		s.ReadCalls++
		s.BytesRead += int64(n)
		s.mu.Unlock()
		chunks := make([]storage.Chunk, 0, u.count)
		for i := 0; i < u.count; i++ {
			lo := i * chunkBytes
			if lo >= n {
				break
			}
			hi := lo + chunkBytes
			if hi > n {
				hi = n
			}
			chunks = append(chunks, storage.Chunk{No: u.start + i, Data: buf[lo:hi]})
		}
		return chunks, nil
	}, emit)
}

// simulateLatency charges the per-request latency of a remote store.
// Short waits use a Gosched yield loop rather than time.Sleep (whose
// granularity exceeds a millisecond) so that concurrent requests'
// latencies overlap even on a single-core host.
func simulateLatency(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= 2*time.Millisecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// InflightPeak returns the high-water mark of concurrently in-flight
// read units, verifying the worker pool's fan-out in experiments.
func (s *Store) InflightPeak() int64 { return s.inflight.Peak() }

// AggregateWhole implements array.ChunkSource. Plain files offer no
// computation capability, so the proxy falls back to chunk fetches —
// matching the capability-based delegation of §6.1.
func (s *Store) AggregateWhole(int64) (*array.AggState, bool, error) {
	return nil, false, nil
}
