package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"scisparql/internal/ssdmclient"
)

// TestStressCancellationAndShutdown fires slow queries, per-request
// deadlines, client-side cancellations and a concurrent graceful
// Shutdown at one server, under -race in CI. The point is not any
// single response but that the process stays healthy the whole time:
// no panic, no deadlock, every client call returns, and Shutdown
// completes within its drain window.
func TestStressCancellationAndShutdown(t *testing.T) {
	srv, connect := startBigServer(t, 200)

	var wg sync.WaitGroup
	unexpected := make(chan error, 64)
	report := func(err error) {
		select {
		case unexpected <- err:
		default:
		}
	}
	// Errors are the norm under this chaos (guard trips, cancellations,
	// shutdown refusals, torn-down connections); only impossible
	// outcomes are reported.

	// Slow queries under tight per-request deadlines.
	for i := 0; i < 4; i++ {
		cl := connect()
		wg.Add(1)
		go func(cl *ssdmclient.Client) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				_, err := cl.QueryGuarded(context.Background(), crossProduct3,
					ssdmclient.Guards{Timeout: 20 * time.Millisecond})
				if err == nil {
					report(fmt.Errorf("runaway query completed"))
					return
				}
			}
		}(cl)
	}
	// Client-side cancellations mid-flight.
	for i := 0; i < 4; i++ {
		cl := connect()
		delay := time.Duration(5+3*i) * time.Millisecond
		wg.Add(1)
		go func(cl *ssdmclient.Client, delay time.Duration) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), delay)
				_, _ = cl.QueryContext(ctx, crossProduct3)
				cancel()
			}
		}(cl, delay)
	}
	// Healthy short queries throughout.
	for i := 0; i < 4; i++ {
		cl := connect()
		wg.Add(1)
		go func(cl *ssdmclient.Client) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				res, err := cl.Query(`SELECT * WHERE { ?s <http://ex/p> ?v }`)
				if err != nil {
					return // shutdown reached this client; fine
				}
				if res.Len() != 200 {
					report(fmt.Errorf("healthy query saw %d rows", res.Len()))
					return
				}
			}
		}(cl)
	}

	// Mid-chaos health check: a fresh client connecting into the storm
	// still gets correct answers.
	time.Sleep(150 * time.Millisecond)
	fresh := connect()
	res, err := fresh.Query(`SELECT * WHERE { ?s <http://ex/p> ?v }`)
	if err != nil || res.Len() != 200 {
		t.Fatalf("fresh client mid-chaos: %v", err)
	}

	// Then shut down in the middle of the remaining traffic.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("client goroutines wedged after shutdown")
	}
	select {
	case err := <-unexpected:
		t.Fatalf("stress run surfaced: %v", err)
	default:
	}
}
