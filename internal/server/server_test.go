package server

import (
	"testing"

	"scisparql/internal/array"
	"scisparql/internal/core"
	"scisparql/internal/protocol"
	"scisparql/internal/rdf"
	"scisparql/internal/ssdmclient"
	"scisparql/internal/storage"
)

func startServer(t *testing.T) (*core.SSDM, *ssdmclient.Client) {
	t.Helper()
	db := core.Open()
	db.AttachBackend(storage.NewMemory())
	srv := New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := ssdmclient.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return db, cl
}

func TestPing(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadAndQueryOverWire(t *testing.T) {
	_, cl := startServer(t)
	err := cl.LoadTurtle(`@prefix ex: <http://ex/> . ex:s ex:v 41 .`, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(`PREFIX ex: <http://ex/> SELECT (?v + 1 AS ?w) WHERE { ex:s ex:v ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "w") != rdf.Integer(42) {
		t.Fatalf("%v", res.Rows)
	}
}

func TestUpdateOverWire(t *testing.T) {
	_, cl := startServer(t)
	n, err := cl.Update(`PREFIX ex: <http://ex/> INSERT DATA { ex:s ex:p 1 , 2 }`)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count %d", n)
	}
}

func TestStoreArrayAndQueryBack(t *testing.T) {
	_, cl := startServer(t)
	a, _ := array.FromFloats([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err := cl.AddArrayTriple("http://ex/run1", "http://ex/result", a); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Update(`PREFIX ex: <http://ex/>
INSERT DATA { ex:run1 ex:temperature 300 }`); err != nil {
		t.Fatal(err)
	}
	// Retrieve by metadata; server computes the slice, only the row
	// crosses the wire.
	res, err := cl.Query(`PREFIX ex: <http://ex/>
SELECT (?r[2,:] AS ?row) WHERE { ?run ex:temperature 300 ; ex:result ?r }`)
	if err != nil {
		t.Fatal(err)
	}
	row, ok := res.Get(0, "row").(rdf.Array)
	if !ok || row.A.Count() != 3 {
		t.Fatalf("%v", res.Rows)
	}
	v, _ := row.A.At(2)
	if v.Float() != 6 {
		t.Fatalf("%v", v)
	}
}

func TestStoreArrayReturnsID(t *testing.T) {
	_, cl := startServer(t)
	a, _ := array.FromInts([]int64{1, 2, 3}, 3)
	id, err := cl.StoreArray(a)
	if err != nil {
		t.Fatal(err)
	}
	if id <= 0 {
		t.Fatalf("id %d", id)
	}
}

func TestExecuteOverWire(t *testing.T) {
	_, cl := startServer(t)
	res, err := cl.Execute(`
PREFIX ex: <http://ex/>
INSERT DATA { ex:s ex:v 5 } ;
SELECT ?v WHERE { ex:s ex:v ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0] != rdf.Integer(5) {
		t.Fatalf("%v", res.Rows)
	}
}

func TestQueryErrorPropagates(t *testing.T) {
	_, cl := startServer(t)
	if _, err := cl.Query(`SELECT BROKEN`); err == nil {
		t.Fatal("expected error")
	}
	// The connection remains usable afterwards.
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleClients(t *testing.T) {
	db, cl1 := startServer(t)
	_ = db
	if _, err := cl1.Update(`PREFIX ex: <http://ex/> INSERT DATA { ex:a ex:v 1 }`); err != nil {
		t.Fatal(err)
	}
	// A second client sees the first client's write.
	srvAddr := cl1 // reuse addr through a second Connect below
	_ = srvAddr
	res, err := cl1.Query(`PREFIX ex: <http://ex/> SELECT ?v WHERE { ex:a ex:v ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("%v", res.Rows)
	}
}

func TestProtocolTermRoundTrip(t *testing.T) {
	a, _ := array.FromFloats([]float64{1.5, 2.5}, 2)
	terms := []rdf.Term{
		rdf.IRI("http://x"),
		rdf.Blank("b"),
		rdf.String{Val: "hi", Lang: "en"},
		rdf.Integer(-7),
		rdf.Float(2.25),
		rdf.Boolean(true),
		rdf.Typed{Lexical: "z", Datatype: rdf.IRI("http://dt")},
		rdf.NewArray(a),
		nil,
	}
	for _, term := range terms {
		wire, err := protocol.EncodeTerm(term)
		if err != nil {
			t.Fatal(err)
		}
		back, err := protocol.DecodeTerm(wire)
		if err != nil {
			t.Fatal(err)
		}
		if term == nil {
			if back != nil {
				t.Fatal("unbound should round trip to nil")
			}
			continue
		}
		if at, ok := term.(rdf.Array); ok {
			bt := back.(rdf.Array)
			eq, _ := array.Equal(at.A, bt.A)
			if !eq {
				t.Fatal("array round trip mismatch")
			}
			continue
		}
		if back.Key() != term.Key() {
			t.Fatalf("round trip %v -> %v", term, back)
		}
	}
}

func TestStatsOverWire(t *testing.T) {
	_, cl := startServer(t)
	if err := cl.LoadTurtle(`@prefix ex: <http://ex/> . ex:s ex:v 1 . ex:s ex:v 2 .`, ""); err != nil {
		t.Fatal(err)
	}
	const q = `PREFIX ex: <http://ex/> SELECT ?v WHERE { ex:s ex:v ?v }`
	for i := 0; i < 3; i++ {
		if _, err := cl.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Triples != 2 {
		t.Fatalf("triples %d, want 2", st.Triples)
	}
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Fatalf("stats %+v, want 1 miss / 2 hits for a repeated query text", st)
	}
	if st.CacheEntries != 1 {
		t.Fatalf("entries %d, want 1", st.CacheEntries)
	}
}

func TestChunkCacheStatsOverWire(t *testing.T) {
	// The chunk cache is process-wide; start from clean counters so the
	// assertions below are about this test's traffic.
	array.SharedChunkCache().Reset()
	_, cl := startServer(t)
	data := make([]float64, 4096)
	for i := range data {
		data[i] = float64(i)
	}
	a, _ := array.FromFloats(data, 4096)
	if err := cl.AddArrayTriple("http://ex/run1", "http://ex/result", a); err != nil {
		t.Fatal(err)
	}
	const q = `PREFIX ex: <http://ex/>
SELECT (?r[10] AS ?v) WHERE { ?run ex:result ?r }`
	// First query faults the chunk in (miss); the repeat hits the cache.
	for i := 0; i < 2; i++ {
		res, err := cl.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		// SciSPARQL subscripts are 1-based: ?r[10] is data[9].
		if res.Len() != 1 || res.Get(0, "v") != rdf.Float(9) {
			t.Fatalf("%v", res.Rows)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunkCacheMisses == 0 {
		t.Fatalf("stats %+v: first element access should be a chunk-cache miss", st)
	}
	if st.ChunkCacheHits == 0 {
		t.Fatalf("stats %+v: repeated element access should be a chunk-cache hit", st)
	}
	if st.ChunkCacheEntries == 0 || st.ChunkCacheBytes == 0 {
		t.Fatalf("stats %+v: cached chunk not visible over the wire", st)
	}
	if st.ChunkCacheBudget == 0 {
		t.Fatalf("stats %+v: budget should report the default", st)
	}
	if st.ChunkCachePeakBytes < st.ChunkCacheBytes {
		t.Fatalf("stats %+v: peak below resident bytes", st)
	}
}
