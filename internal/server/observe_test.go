package server

import (
	"bytes"
	"context"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"scisparql/internal/core"
	"scisparql/internal/metrics"
	"scisparql/internal/ssdmclient"
	"scisparql/internal/storage"
)

// startObservedServer is startServer with a private metrics registry
// (so assertions don't race other tests sharing the process default)
// and optional logger / slow-query settings applied before Listen.
func startObservedServer(t *testing.T, cfg func(*Server)) (*core.SSDM, *ssdmclient.Client, *metrics.Registry, string) {
	t.Helper()
	db := core.Open()
	db.AttachBackend(storage.NewMemory())
	srv := New(db)
	reg := metrics.NewRegistry()
	srv.Metrics = reg
	if cfg != nil {
		cfg(srv)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := ssdmclient.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return db, cl, reg, addr
}

const observeData = `@prefix ex: <http://ex/> .
ex:s1 ex:p 1 . ex:s2 ex:p 2 . ex:s3 ex:p 3 .`

const observeQuery = `PREFIX ex: <http://ex/> SELECT ?s ?v WHERE { ?s ex:p ?v } ORDER BY ?v`

func TestExplainOverWire(t *testing.T) {
	_, cl, _, _ := startObservedServer(t, nil)
	if err := cl.LoadTurtle(observeData, ""); err != nil {
		t.Fatal(err)
	}
	plan, err := cl.Explain(observeQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "bgp") {
		t.Errorf("plan-only explain missing bgp step:\n%s", plan)
	}
}

func TestExplainAnalyzeOverWire(t *testing.T) {
	_, cl, _, _ := startObservedServer(t, nil)
	if err := cl.LoadTurtle(observeData, ""); err != nil {
		t.Fatal(err)
	}
	res, tr, err := cl.ExplainAnalyze(context.Background(), observeQuery, ssdmclient.Guards{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("rows = %d, want 3", res.Len())
	}
	if tr == nil {
		t.Fatal("nil trace over the wire")
	}
	if tr.Rows != 3 {
		t.Errorf("trace rows = %d, want 3", tr.Rows)
	}
	if tr.TotalNS <= 0 || tr.WhereNS <= 0 {
		t.Errorf("timings not populated: total=%d where=%d", tr.TotalNS, tr.WhereNS)
	}
	// The query vectorizes fully by default, so the counters crossing
	// the wire are the batch ones and the plan shows the vec pipeline.
	if !tr.Vectorized || tr.VecRows != 3 || tr.VecBatches <= 0 {
		t.Errorf("vec counters: vectorized=%v batches=%d rows=%d, want true/>0/3", tr.Vectorized, tr.VecBatches, tr.VecRows)
	}
	if !strings.Contains(tr.Plan, "rows=3") {
		t.Errorf("annotated plan missing counters:\n%s", tr.Plan)
	}
	if tr.PlanCached {
		t.Error("first run reported plan_cached=true")
	}

	// Second run of the same text must hit the compiled-query cache.
	_, tr2, err := cl.ExplainAnalyze(context.Background(), observeQuery, ssdmclient.Guards{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.PlanCached {
		t.Error("second run reported plan_cached=false, want cache hit")
	}
}

// TestExplainAnalyzeTraceOnFailure: when the query dies on a guard, the
// response still carries the partial trace next to the error.
func TestExplainAnalyzeTraceOnFailure(t *testing.T) {
	_, cl, _, _ := startObservedServer(t, nil)
	if err := cl.LoadTurtle(observeData, ""); err != nil {
		t.Fatal(err)
	}
	_, tr, err := cl.ExplainAnalyze(context.Background(), observeQuery,
		ssdmclient.Guards{MaxBindings: 1})
	if err == nil {
		t.Fatal("want guard error")
	}
	if tr == nil {
		t.Fatal("no trace attached to failed analyze")
	}
	if tr.Error == "" {
		t.Errorf("trace error field empty")
	}
}

func TestMetricsScrape(t *testing.T) {
	_, cl, reg, _ := startObservedServer(t, nil)
	if err := cl.LoadTurtle(observeData, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.Query(observeQuery); err != nil {
			t.Fatal(err)
		}
	}
	// A failing request feeds the error counter.
	if _, err := cl.Query(`SELECT ?s WHERE { this is not sparql`); err == nil {
		t.Fatal("want parse error")
	}

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("scrape status %d", rec.Code)
	}
	body := rec.Body.String()
	wants := []string{
		`ssdm_requests_total{op="query"} 4`,
		`ssdm_requests_total{op="load_turtle"} 1`,
		"ssdm_request_errors_total{code=",
		"ssdm_query_duration_seconds_count 4",
		"ssdm_query_duration_seconds_bucket{le=",
		"ssdm_rows_returned_total 9",
		"ssdm_triples 3",
		"ssdm_connections_active 1",
		"ssdm_query_cache_hits",
		"ssdm_chunk_cache_budget_bytes",
		"ssdm_storage_read_calls",
	}
	for _, want := range wants {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape body:\n%s", body)
	}
}

// syncWriter serializes writes from the server's connection goroutines
// into a buffer the test can read.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestSlowQueryLog(t *testing.T) {
	out := &syncWriter{}
	_, cl, _, _ := startObservedServer(t, func(s *Server) {
		s.Logger = slog.New(slog.NewJSONHandler(out, nil))
		s.SlowQuery = time.Nanosecond // everything is slow
	})
	if err := cl.LoadTurtle(observeData, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(observeQuery); err != nil {
		t.Fatal(err)
	}
	logged := out.String()
	for _, want := range []string{
		`"msg":"slow query"`,
		`"op":"query"`,
		`"duration":`,
		`"rows":3`,
		`"outcome":"ok"`,
		"SELECT ?s ?v",
	} {
		if !strings.Contains(logged, want) {
			t.Errorf("slow-query log missing %s:\n%s", want, logged)
		}
	}
}

// TestSlowQueryLogDisabled: with no threshold set, nothing is logged.
func TestSlowQueryLogDisabled(t *testing.T) {
	out := &syncWriter{}
	_, cl, _, _ := startObservedServer(t, func(s *Server) {
		s.Logger = slog.New(slog.NewJSONHandler(out, nil))
	})
	if err := cl.LoadTurtle(observeData, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(observeQuery); err != nil {
		t.Fatal(err)
	}
	if logged := out.String(); strings.Contains(logged, "slow query") {
		t.Errorf("slow-query log written with threshold disabled:\n%s", logged)
	}
}

// TestObservabilityStress runs concurrent clients, EXPLAIN ANALYZE
// requests and metric scrapes against one server; under -race this
// verifies the whole observability path is race-clean.
func TestObservabilityStress(t *testing.T) {
	db, cl0, reg, addr := startObservedServer(t, func(s *Server) {
		s.SlowQuery = time.Nanosecond
		s.Logger = slog.New(slog.NewJSONHandler(&syncWriter{}, nil))
	})
	if err := cl0.LoadTurtle(observeData, ""); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			cl, err := ssdmclient.Connect(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < iters; i++ {
				if n%2 == 0 {
					if _, err := cl.Query(observeQuery); err != nil {
						errs <- err
						return
					}
				} else {
					if _, _, err := cl.ExplainAnalyze(context.Background(), observeQuery, ssdmclient.Guards{}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	// Concurrent scrapers exercising every gauge closure.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				_ = reg.WritePrometheus(&sb)
				_ = db.QueryCacheStats()
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if !strings.Contains(body, `ssdm_requests_total{op="query"} 50`) {
		t.Errorf("query counter wrong after stress:\n%s", grepLines(body, "ssdm_requests_total"))
	}
	if !strings.Contains(body, `ssdm_requests_total{op="explain"} 50`) {
		t.Errorf("explain counter wrong after stress:\n%s", grepLines(body, "ssdm_requests_total"))
	}
	if !strings.Contains(body, "ssdm_query_duration_seconds_count 100") {
		t.Errorf("latency histogram wrong after stress:\n%s", grepLines(body, "duration_seconds_count"))
	}
}

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
