// Package server exposes an SSDM instance as a TCP service speaking
// the JSON protocol of internal/protocol — SSDM's client-server
// deployment mode (dissertation §5.1), and the server side of the
// Matlab integration of chapter 7.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"

	"scisparql/internal/core"
	"scisparql/internal/engine"
	"scisparql/internal/protocol"
	"scisparql/internal/rdf"
)

// Server wraps an SSDM instance behind a listener. Each connection is
// served by its own goroutine and requests from different connections
// execute concurrently: SSDM's operation-level reader-writer lock
// classifies them, so read-only queries run in parallel while updates
// and loads are exclusive. Requests within one connection are handled
// in arrival order, preserving read-your-writes semantics for a client
// that pipelines an update before a query.
type Server struct {
	DB *core.SSDM

	mu       sync.Mutex // guards listener and closed
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
}

// ErrClosed is returned by Listen on a server that has been Closed.
var ErrClosed = errors.New("server: closed")

// New creates a server over an SSDM instance.
func New(db *core.SSDM) *Server {
	return &Server{DB: db}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0")
// and returns the bound address. Listening on a closed or already
// listening server is an error.
func (s *Server) Listen(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if s.listener != nil {
		return "", errors.New("server: already listening")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener and waits for active connections. It is
// idempotent; the server cannot be reused afterwards.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.listener = nil
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

func (s *Server) serve(conn net.Conn) {
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req protocol.Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				_ = enc.Encode(protocol.Response{OK: false, Error: "bad request: " + err.Error()})
			}
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handle executes one request against the SSDM instance. It takes no
// server-level lock: concurrency control lives in core.SSDM, whose
// reader-writer lock lets queries from many connections run in
// parallel.
func (s *Server) handle(req *protocol.Request) *protocol.Response {
	switch req.Op {
	case protocol.OpPing:
		return &protocol.Response{OK: true}
	case protocol.OpQuery:
		res, err := s.DB.Query(req.Text)
		if err != nil {
			return fail(err)
		}
		return encodeResults(res)
	case protocol.OpExecute:
		results, err := s.DB.Execute(req.Text)
		if err != nil {
			return fail(err)
		}
		if len(results) == 0 {
			return &protocol.Response{OK: true}
		}
		return encodeResults(results[len(results)-1])
	case protocol.OpUpdate:
		n, err := s.DB.Update(req.Text)
		if err != nil {
			return fail(err)
		}
		return &protocol.Response{OK: true, Count: n}
	case protocol.OpLoadTurtle:
		if err := s.DB.LoadTurtle(req.Text, rdf.IRI(req.Graph)); err != nil {
			return fail(err)
		}
		return &protocol.Response{OK: true}
	case protocol.OpStoreArray:
		a, err := protocol.DecodeArray(req.Array)
		if err != nil {
			return fail(err)
		}
		id, err := s.DB.StoreArray(a)
		if err != nil {
			return fail(err)
		}
		return &protocol.Response{OK: true, ArrayID: id}
	case protocol.OpArrayTriple:
		a, err := protocol.DecodeArray(req.Array)
		if err != nil {
			return fail(err)
		}
		err = s.DB.AddArrayTriple(rdf.IRI(req.Subject), rdf.IRI(req.Property), a)
		if err != nil {
			return fail(err)
		}
		return &protocol.Response{OK: true, Count: 1}
	case protocol.OpStats:
		cs := s.DB.QueryCacheStats()
		return &protocol.Response{OK: true, Stats: &protocol.Stats{
			CacheHits:    cs.Hits,
			CacheMisses:  cs.Misses,
			CacheEntries: cs.Entries,
			CacheEpoch:   cs.Epoch,
			Triples:      s.DB.Dataset.Default.Size(),
		}}
	default:
		return &protocol.Response{OK: false, Error: "unknown op " + req.Op}
	}
}

func fail(err error) *protocol.Response {
	return &protocol.Response{OK: false, Error: err.Error()}
}

func encodeResults(res *engine.Results) *protocol.Response {
	out := &protocol.Response{OK: true, Vars: res.Vars, Bool: res.Bool}
	for _, row := range res.Rows {
		wire := make([]protocol.Term, len(row))
		for i, t := range row {
			wt, err := protocol.EncodeTerm(t)
			if err != nil {
				return fail(err)
			}
			wire[i] = wt
		}
		out.Rows = append(out.Rows, wire)
	}
	if res.Graph != nil {
		out.Count = res.Graph.Size()
	}
	return out
}
