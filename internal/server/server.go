// Package server exposes an SSDM instance as a TCP service speaking
// the JSON protocol of internal/protocol — SSDM's client-server
// deployment mode (dissertation §5.1), and the server side of the
// Matlab integration of chapter 7.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"scisparql/internal/core"
	"scisparql/internal/engine"
	"scisparql/internal/metrics"
	"scisparql/internal/protocol"
	"scisparql/internal/rdf"
)

// Server wraps an SSDM instance behind a listener. Each connection is
// served by its own goroutine and requests from different connections
// execute concurrently: SSDM's operation-level reader-writer lock
// classifies them, so read-only queries run in parallel while updates
// and loads are exclusive. Requests within one connection are handled
// in arrival order, preserving read-your-writes semantics for a client
// that pipelines an update before a query.
//
// Failure containment: every request executes under a context derived
// from the server's base context plus any per-request deadline, so
// shutdown and timeouts cancel in-flight queries cooperatively; panics
// inside request handling are trapped per request (stack logged, error
// response sent) and can never take down the process.
type Server struct {
	DB *core.SSDM

	// Logger receives structured server output — the slow-query log and
	// the panic trap. Nil uses slog.Default(). Set before Listen.
	Logger *slog.Logger

	// SlowQuery is the duration at or above which a query-class request
	// is logged through Logger with its text, duration, row count and
	// guard outcome. Zero disables the slow-query log. Set before
	// Listen.
	SlowQuery time.Duration

	// Metrics is the registry the server instruments (request counts,
	// latency histogram, error codes, cache and storage gauges). Nil
	// uses metrics.Default(). Set before Listen.
	Metrics *metrics.Registry

	mu       sync.Mutex // guards listener, closed and conns
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
	conns    map[net.Conn]struct{}

	instOnce    sync.Once
	inst        *instruments
	activeConns atomic.Int64

	// baseCtx parents every request context; baseCancel aborts all
	// in-flight work on shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// draining is set when Shutdown/Close begins: connections finish
	// the request in flight, then close instead of reading the next.
	draining atomic.Bool
}

// ErrClosed is returned by Listen on a server that has been Closed.
var ErrClosed = errors.New("server: closed")

// New creates a server over an SSDM instance.
func New(db *core.SSDM) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{DB: db, conns: make(map[net.Conn]struct{}), baseCtx: ctx, baseCancel: cancel}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0")
// and returns the bound address. Listening on a closed or already
// listening server is an error.
func (s *Server) Listen(addr string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", ErrClosed
	}
	if s.listener != nil {
		return "", errors.New("server: already listening")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	// Register the metric families eagerly so a scrape that lands
	// before the first request still sees them (at zero).
	s.instrumentSet()
	s.listener = ln
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Shutdown gracefully stops the server: it stops accepting new
// connections, cancels the contexts of in-flight queries (they return
// cancellation errors to their clients), and lets connections finish
// writing the response in flight before closing them. It waits for
// the drain to complete or for ctx to expire, whichever comes first;
// on expiry remaining connections are force-closed and ctx's error is
// returned. The server cannot be reused afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	ln := s.beginShutdown()
	if ln != nil {
		_ = ln.Close()
	}
	// Unblock connections idle in Decode: an immediately expiring read
	// deadline fails the pending (or next) read while leaving writes —
	// the response being flushed to a draining client — unaffected.
	s.mu.Lock()
	for c := range s.conns {
		_ = c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Every acknowledged update has left the group-commit queue
		// (acknowledgement implies its fsync completed); a final flush
		// covers interval/none sync policies so a clean shutdown loses
		// nothing.
		return s.DB.FlushWAL()
	case <-ctx.Done():
		s.forceCloseConns()
		<-done
		_ = s.DB.FlushWAL()
		return ctx.Err()
	}
}

// Close stops the server immediately: the listener is closed,
// in-flight query contexts are cancelled, and every connection is
// force-closed. It is idempotent; the server cannot be reused
// afterwards.
func (s *Server) Close() error {
	ln := s.beginShutdown()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.forceCloseConns()
	s.wg.Wait()
	return err
}

// beginShutdown marks the server closed and draining, cancels
// in-flight request contexts, and detaches the listener (returned for
// the caller to close outside the lock).
func (s *Server) beginShutdown() net.Listener {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.listener = nil
	s.mu.Unlock()
	s.draining.Store(true)
	s.baseCancel()
	return ln
}

func (s *Server) forceCloseConns() {
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		s.activeConns.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.activeConns.Add(-1)
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serve(conn)
		}()
	}
}

// serve runs one connection's request loop. Responses go through a
// buffered writer flushed once per response, so a row batch costs one
// syscall instead of one per JSON encoder write.
func (s *Server) serve(conn net.Conn) {
	dec := json.NewDecoder(bufio.NewReader(conn))
	bw := bufio.NewWriter(conn)
	enc := json.NewEncoder(bw)
	for {
		var req protocol.Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !s.draining.Load() {
				_ = enc.Encode(protocol.Response{OK: false, Error: "bad request: " + err.Error(), Code: protocol.CodeError})
				_ = bw.Flush()
			}
			return
		}
		resp := s.handle(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if s.draining.Load() {
			// Finish the request in flight, then drain: the client gets
			// its response and a clean EOF instead of a mid-frame cut.
			return
		}
	}
}

// logger returns the configured structured logger (slog.Default when
// unset).
func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.Default()
}

// registry returns the configured metrics registry (the process default
// when unset).
func (s *Server) registry() *metrics.Registry {
	if s.Metrics != nil {
		return s.Metrics
	}
	return metrics.Default()
}

// instruments holds the server's registered metric handles.
type instruments struct {
	requests *metrics.CounterVec
	errors   *metrics.CounterVec
	latency  *metrics.Histogram
	rows     *metrics.Counter
	slow     *metrics.Counter
}

// instrumentSet registers (or re-resolves — registration is idempotent)
// the server's instruments and gauges on first use.
func (s *Server) instrumentSet() *instruments {
	s.instOnce.Do(func() {
		r := s.registry()
		s.inst = &instruments{
			requests: r.CounterVec("ssdm_requests_total", "Requests handled, by operation.", "op"),
			errors:   r.CounterVec("ssdm_request_errors_total", "Failed requests, by error code.", "code"),
			latency:  r.Histogram("ssdm_query_duration_seconds", "Latency of query-class requests (query, execute, update, explain).", nil),
			rows:     r.Counter("ssdm_rows_returned_total", "Result rows returned to clients."),
			slow:     r.Counter("ssdm_slow_queries_total", "Query-class requests at or above the slow-query threshold."),
		}
		s.registerGauges(r)
	})
	return s.inst
}

// registerGauges publishes the instance's cache, dataset and storage
// state as scrape-time gauges.
func (s *Server) registerGauges(r *metrics.Registry) {
	db := s.DB
	r.GaugeFunc("ssdm_connections_active", "Open client connections.",
		func() float64 { return float64(s.activeConns.Load()) })
	r.GaugeFunc("ssdm_triples", "Triples in the default graph.",
		func() float64 { return float64(db.Dataset.Default.Size()) })
	r.GaugeFunc("ssdm_query_cache_hits", "Compiled-query cache hits since start.",
		func() float64 { return float64(db.QueryCacheStats().Hits) })
	r.GaugeFunc("ssdm_query_cache_misses", "Compiled-query cache misses since start.",
		func() float64 { return float64(db.QueryCacheStats().Misses) })
	r.GaugeFunc("ssdm_query_cache_entries", "Compiled queries resident in the cache.",
		func() float64 { return float64(db.QueryCacheStats().Entries) })
	r.GaugeFunc("ssdm_chunk_cache_hits", "Chunk-cache hits since start.",
		func() float64 { return float64(db.ChunkCacheStats().Hits) })
	r.GaugeFunc("ssdm_chunk_cache_misses", "Chunk-cache misses since start.",
		func() float64 { return float64(db.ChunkCacheStats().Misses) })
	r.GaugeFunc("ssdm_chunk_cache_coalesced", "Chunk fetches coalesced onto another in-flight fetch.",
		func() float64 { return float64(db.ChunkCacheStats().Coalesced) })
	r.GaugeFunc("ssdm_chunk_cache_evictions", "Chunk-cache evictions since start.",
		func() float64 { return float64(db.ChunkCacheStats().Evictions) })
	r.GaugeFunc("ssdm_chunk_cache_bytes", "Bytes resident in the chunk cache.",
		func() float64 { return float64(db.ChunkCacheStats().Bytes) })
	r.GaugeFunc("ssdm_chunk_cache_peak_bytes", "Chunk-cache residency high-water mark.",
		func() float64 { return float64(db.ChunkCacheStats().PeakBytes) })
	r.GaugeFunc("ssdm_chunk_cache_budget_bytes", "Configured chunk-cache byte budget.",
		func() float64 { return float64(db.ChunkCacheStats().Budget) })
	r.GaugeFunc("ssdm_dict_terms", "Terms interned in the dataset's dictionaries.",
		func() float64 { return float64(db.DictStats().Terms) })
	r.GaugeFunc("ssdm_dict_bytes", "Approximate bytes held by term dictionaries.",
		func() float64 { return float64(db.DictStats().Bytes) })
	r.GaugeFunc("ssdm_dict_generation", "Dictionary/graph mutation generation counter.",
		func() float64 { return float64(db.DictStats().Generation) })
	r.GaugeFunc("ssdm_vec_queries_total", "Query executions that used a vectorized plan.",
		func() float64 { return float64(db.VecStats().Queries) })
	r.GaugeFunc("ssdm_vec_batches_total", "Batches emitted by vectorized pipelines.",
		func() float64 { return float64(db.VecStats().Batches) })
	r.GaugeFunc("ssdm_vec_rows_total", "Rows emitted by vectorized pipelines.",
		func() float64 { return float64(db.VecStats().Rows) })
	r.GaugeFunc("ssdm_vec_agg_queries_total", "Aggregations folded batch-natively over ID columns.",
		func() float64 { return float64(db.VecStats().AggQueries) })
	r.GaugeFunc("ssdm_vec_agg_groups_total", "Groups produced by batch-native aggregation.",
		func() float64 { return float64(db.VecStats().AggGroups) })
	r.GaugeFunc("ssdm_vec_sort_queries_total", "Vectorized ORDER BY sorts over ID-resident keys.",
		func() float64 { return float64(db.VecStats().SortQueries) })
	r.GaugeFunc("ssdm_vec_topk_queries_total", "Vectorized sorts that used the bounded top-K heap.",
		func() float64 { return float64(db.VecStats().TopKQueries) })
	r.GaugeFunc("ssdm_wal_appends_total", "WAL records appended (0 when running without a WAL).",
		func() float64 { return float64(db.WALStats().Appends) })
	r.GaugeFunc("ssdm_wal_appended_bytes_total", "WAL frame bytes appended.",
		func() float64 { return float64(db.WALStats().AppendedBytes) })
	r.GaugeFunc("ssdm_wal_syncs_total", "WAL fsyncs issued.",
		func() float64 { return float64(db.WALStats().Syncs) })
	r.GaugeFunc("ssdm_wal_commits_total", "WAL commit acknowledgements.",
		func() float64 { return float64(db.WALStats().Commits) })
	r.GaugeFunc("ssdm_wal_grouped_commits_total", "WAL commits that rode another commit's fsync (group commit).",
		func() float64 { return float64(db.WALStats().GroupedCommit) })
	r.GaugeFunc("ssdm_wal_segments", "Live WAL segment files.",
		func() float64 { return float64(db.WALStats().Segments) })
	r.GaugeFunc("ssdm_wal_tail_lsn", "Next WAL append position.",
		func() float64 { return float64(db.WALStats().TailLSN) })
	r.GaugeFunc("ssdm_wal_synced_lsn", "Everything below this LSN is durable.",
		func() float64 { return float64(db.WALStats().SyncedLSN) })
	r.GaugeFunc("ssdm_wal_recovery_seconds", "Time the last startup spent in checkpoint load and log replay.",
		func() float64 { return float64(db.WALStats().RecoveryNanos) / 1e9 })
	r.GaugeFunc("ssdm_storage_read_calls", "Back-end chunk read calls since start (0 when resident-only).",
		func() float64 {
			if b, ok := db.Backend().(interface{ ReadCallCount() int64 }); ok {
				return float64(b.ReadCallCount())
			}
			return 0
		})
	r.GaugeFunc("ssdm_storage_inflight_peak", "High-water mark of concurrent back-end reads.",
		func() float64 {
			if b, ok := db.Backend().(interface{ InflightPeak() int64 }); ok {
				return float64(b.InflightPeak())
			}
			return 0
		})
	shardStat := func(f func(core.ShardStats) float64) func() float64 {
		return func() float64 {
			if ss, ok := db.ShardStats(); ok {
				return f(ss)
			}
			return 0
		}
	}
	r.GaugeFunc("ssdm_shard_topology", "Shards in the coordinator's topology (0 on single-node instances).",
		shardStat(func(ss core.ShardStats) float64 { return float64(ss.Shards) }))
	r.GaugeFunc("ssdm_shard_pushdown_queries_total", "Queries executed per-shard with coordinator-side partial merging.",
		shardStat(func(ss core.ShardStats) float64 { return float64(ss.PushdownQueries) }))
	r.GaugeFunc("ssdm_shard_gather_queries_total", "Queries answered by gathering shard triples to the coordinator.",
		shardStat(func(ss core.ShardStats) float64 { return float64(ss.GatherQueries) }))
	r.GaugeFunc("ssdm_shard_scatters_total", "Scatter fan-outs issued by the coordinator.",
		shardStat(func(ss core.ShardStats) float64 { return float64(ss.Scatters) }))
	r.GaugeFunc("ssdm_shard_errors_total", "Per-shard request failures observed by the coordinator.",
		shardStat(func(ss core.ShardStats) float64 { return float64(ss.Errors) }))
	r.GaugeFunc("ssdm_shard_calls_total", "Requests the coordinator sent to shards (all shards summed).",
		shardStat(func(ss core.ShardStats) float64 {
			var n int64
			for _, c := range ss.PerShard {
				n += c.Calls
			}
			return float64(n)
		}))
	r.GaugeFunc("ssdm_shard_rows_total", "Rows and triples shards returned to the coordinator (all shards summed).",
		shardStat(func(ss core.ShardStats) float64 {
			var n int64
			for _, c := range ss.PerShard {
				n += c.Rows
			}
			return float64(n)
		}))
}

// queryClass reports whether an op runs queries/updates — the requests
// the latency histogram and slow-query log cover.
func queryClass(op string) bool {
	switch op {
	case protocol.OpQuery, protocol.OpExecute, protocol.OpUpdate, protocol.OpExplain:
		return true
	}
	return false
}

// truncateQuery bounds the query text carried in a slow-query record.
func truncateQuery(text string) string {
	const max = 400
	if len(text) <= max {
		return text
	}
	return text[:max] + "..."
}

// handle wraps handleOp with observability: per-op request counters,
// the query latency histogram, error-code counters, and the slow-query
// log.
func (s *Server) handle(req *protocol.Request) *protocol.Response {
	in := s.instrumentSet()
	start := time.Now()
	resp := s.handleOp(req)
	dur := time.Since(start)

	in.requests.With(req.Op).Inc()
	if !resp.OK {
		in.errors.With(resp.Code).Inc()
	}
	in.rows.Add(int64(len(resp.Rows)))
	if queryClass(req.Op) {
		in.latency.Observe(dur.Seconds())
		if s.SlowQuery > 0 && dur >= s.SlowQuery {
			in.slow.Inc()
			outcome := "ok"
			if !resp.OK {
				outcome = resp.Code
			}
			s.logger().Warn("slow query",
				"op", req.Op,
				"duration", dur.String(),
				"rows", len(resp.Rows),
				"outcome", outcome,
				"query", truncateQuery(req.Text))
		}
	}
	return resp
}

// handleOp executes one request against the SSDM instance. It takes no
// server-level lock: concurrency control lives in core.SSDM, whose
// reader-writer lock lets queries from many connections run in
// parallel. A panic while handling becomes an error response with the
// stack logged — one hostile or buggy request never kills the server.
func (s *Server) handleOp(req *protocol.Request) (resp *protocol.Response) {
	defer func() {
		if r := recover(); r != nil {
			s.logger().Error("panic while handling request",
				"op", req.Op,
				"panic", fmt.Sprint(r),
				"stack", string(debug.Stack()))
			resp = &protocol.Response{
				OK:    false,
				Error: fmt.Sprintf("internal error handling %s: %v", req.Op, r),
				Code:  protocol.CodeInternal,
			}
		}
	}()
	ctx := s.baseCtx
	if err := ctx.Err(); err != nil {
		return &protocol.Response{OK: false, Error: "server shutting down", Code: protocol.CodeShutdown}
	}
	lim := engine.Limits{
		MaxResultRows: req.MaxRows,
		MaxBindings:   req.MaxBindings,
		Timeout:       time.Duration(req.TimeoutMS) * time.Millisecond,
	}
	switch req.Op {
	case protocol.OpPing:
		return &protocol.Response{OK: true}
	case protocol.OpQuery:
		res, err := s.DB.QueryLimits(ctx, req.Text, lim)
		if err != nil {
			return fail(err)
		}
		return encodeResults(res)
	case protocol.OpExecute:
		results, err := s.DB.ExecuteLimits(ctx, req.Text, lim)
		if err != nil {
			return fail(err)
		}
		if len(results) == 0 {
			return &protocol.Response{OK: true}
		}
		return encodeResults(results[len(results)-1])
	case protocol.OpUpdate:
		n, err := s.DB.UpdateLimits(ctx, req.Text, lim)
		if err != nil {
			return fail(err)
		}
		return &protocol.Response{OK: true, Count: n}
	case protocol.OpLoadTurtle:
		if err := s.DB.LoadTurtle(req.Text, rdf.IRI(req.Graph)); err != nil {
			return fail(err)
		}
		return &protocol.Response{OK: true}
	case protocol.OpStoreArray:
		a, err := protocol.DecodeArray(req.Array)
		if err != nil {
			return fail(err)
		}
		id, err := s.DB.StoreArray(a)
		if err != nil {
			return fail(err)
		}
		return &protocol.Response{OK: true, ArrayID: id}
	case protocol.OpArrayTriple:
		a, err := protocol.DecodeArray(req.Array)
		if err != nil {
			return fail(err)
		}
		err = s.DB.AddArrayTriple(rdf.IRI(req.Subject), rdf.IRI(req.Property), a)
		if err != nil {
			return fail(err)
		}
		return &protocol.Response{OK: true, Count: 1}
	case protocol.OpExplain:
		if !req.Analyze {
			plan, err := s.DB.Explain(req.Text)
			if err != nil {
				return fail(err)
			}
			return &protocol.Response{OK: true, Explain: plan}
		}
		res, tr, err := s.DB.QueryAnalyze(ctx, req.Text, lim)
		if err != nil {
			// The trace survives execution failure (timeout, budget):
			// return it alongside the error so the client sees where the
			// time went.
			resp := fail(err)
			if tr != nil {
				resp.Trace = encodeTrace(tr)
				resp.Explain = tr.String()
			}
			return resp
		}
		resp := encodeResults(res)
		resp.Trace = encodeTrace(tr)
		resp.Explain = tr.String()
		return resp
	case protocol.OpStats:
		cs := s.DB.QueryCacheStats()
		cc := s.DB.ChunkCacheStats()
		dict := s.DB.DictStats()
		vec := s.DB.VecStats()
		wal := s.DB.WALStats()
		st := &protocol.Stats{
			CacheHits:    cs.Hits,
			CacheMisses:  cs.Misses,
			CacheEntries: cs.Entries,
			CacheEpoch:   cs.Epoch,
			Triples:      s.DB.Dataset.Default.Size(),

			ChunkCacheHits:      cc.Hits,
			ChunkCacheMisses:    cc.Misses,
			ChunkCacheCoalesced: cc.Coalesced,
			ChunkCacheEvictions: cc.Evictions,
			ChunkCacheEntries:   cc.Entries,
			ChunkCacheBytes:     cc.Bytes,
			ChunkCachePeakBytes: cc.PeakBytes,
			ChunkCacheBudget:    cc.Budget,

			DictTerms:      dict.Terms,
			DictBytes:      dict.Bytes,
			DictGeneration: dict.Generation,

			VecQueries:     vec.Queries,
			VecBatches:     vec.Batches,
			VecRows:        vec.Rows,
			VecAggQueries:  vec.AggQueries,
			VecAggGroups:   vec.AggGroups,
			VecSortQueries: vec.SortQueries,
			VecTopKQueries: vec.TopKQueries,

			WALEnabled:        wal.Enabled,
			WALAppends:        wal.Appends,
			WALAppendedBytes:  wal.AppendedBytes,
			WALSyncs:          wal.Syncs,
			WALCommits:        wal.Commits,
			WALGroupedCommits: wal.GroupedCommit,
			WALSegments:       wal.Segments,
			WALTailLSN:        wal.TailLSN,
			WALSyncedLSN:      wal.SyncedLSN,
			WALRecoveredRecs:  wal.RecoveredRecords,
			WALRecoveryNS:     wal.RecoveryNanos,
		}
		if ss, ok := s.DB.ShardStats(); ok {
			st.Shards = ss.Shards
			st.ShardPushdown = ss.PushdownQueries
			st.ShardGather = ss.GatherQueries
			st.ShardScatters = ss.Scatters
			st.ShardErrors = ss.Errors
			for _, c := range ss.PerShard {
				st.ShardBreakdown = append(st.ShardBreakdown, protocol.ShardInfo{
					Name: c.Name, Calls: c.Calls, Errors: c.Errors, Rows: c.Rows,
				})
			}
		}
		return &protocol.Response{OK: true, Stats: st}
	default:
		return &protocol.Response{OK: false, Error: "unknown op " + req.Op, Code: protocol.CodeError}
	}
}

// encodeTrace converts an engine execution trace to its wire form.
func encodeTrace(tr *engine.Trace) *protocol.TraceInfo {
	if tr == nil {
		return nil
	}
	return &protocol.TraceInfo{
		ParseNS:      tr.ParseNanos,
		PlanCached:   tr.PlanCached,
		TotalNS:      tr.TotalNanos,
		WhereNS:      tr.WhereNanos,
		AggNS:        tr.AggNanos,
		ProjNS:       tr.ProjNanos,
		SortNS:       tr.SortNanos,
		Rows:         tr.Rows,
		Bindings:     tr.Bindings,
		MatchCalls:   tr.MatchCalls,
		Matched:      tr.Matched,
		Vectorized:   tr.Vectorized,
		VecBatches:   tr.VecBatches,
		VecRows:      tr.VecRows,
		VecAggGroups: tr.VecAggGroups,
		VecSortRows:  tr.VecSortRows,
		VecSortTopK:  tr.VecSortTopK,
		ChunkFetches: tr.ChunkFetches,
		ChunkWaitNS:  tr.ChunkWaitNanos,
		ShardMode:    tr.ShardMode,
		Shards:       tr.Shards,
		ShardCalls:   tr.ShardCalls,
		ShardRows:    tr.ShardRows,
		Error:        tr.Error,
		Plan:         tr.Plan,
	}
}

func fail(err error) *protocol.Response {
	return &protocol.Response{OK: false, Error: err.Error(), Code: errorCode(err)}
}

// errorCode maps the engine's typed errors to wire error codes so
// clients can distinguish "your query timed out" from "your query is
// malformed" without parsing message text.
func errorCode(err error) string {
	switch {
	case errors.Is(err, engine.ErrQueryTimeout) || errors.Is(err, context.DeadlineExceeded):
		return protocol.CodeTimeout
	case errors.Is(err, engine.ErrResourceLimit):
		return protocol.CodeResourceLimit
	case errors.Is(err, engine.ErrQueryCancelled) || errors.Is(err, context.Canceled):
		return protocol.CodeCancelled
	case errors.Is(err, engine.ErrInternal):
		return protocol.CodeInternal
	case errors.Is(err, core.ErrDurability):
		return protocol.CodeDurability
	case errors.Is(err, core.ErrShardUnavailable):
		return protocol.CodeShardUnavailable
	default:
		return protocol.CodeError
	}
}

// encodeResults converts a solution table to its wire form. All rows
// are encoded before the response is assembled, so an encoding failure
// on any row yields a pure error response — never an OK response with
// rows partially committed.
func encodeResults(res *engine.Results) *protocol.Response {
	rows, err := encodeRows(res.Rows)
	if err != nil {
		return fail(err)
	}
	out := &protocol.Response{OK: true, Vars: res.Vars, Bool: res.Bool, Rows: rows}
	if res.Graph != nil {
		out.Count = res.Graph.Size()
	}
	return out
}

// encodeRows encodes every row or none: the first term that cannot be
// represented on the wire fails the whole result.
func encodeRows(rows [][]rdf.Term) ([][]protocol.Term, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	out := make([][]protocol.Term, 0, len(rows))
	for _, row := range rows {
		wire := make([]protocol.Term, len(row))
		for i, t := range row {
			wt, err := protocol.EncodeTerm(t)
			if err != nil {
				return nil, err
			}
			wire[i] = wt
		}
		out = append(out, wire)
	}
	return out, nil
}
