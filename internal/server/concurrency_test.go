package server

import (
	"fmt"
	"sync"
	"testing"

	"scisparql/internal/core"
	"scisparql/internal/ssdmclient"
	"scisparql/internal/storage"
)

// TestListenAfterClose: a closed server must refuse to resurrect.
func TestListenAfterClose(t *testing.T) {
	srv := New(core.Open())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_ = addr
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("Listen after Close should fail")
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestListenTwice: a listening server refuses a second listener.
func TestListenTwice(t *testing.T) {
	srv := New(core.Open())
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Fatal("second Listen should fail")
	}
}

// TestListenCloseRace drives Listen and Close from different
// goroutines; the seed wrote s.listener in Listen without the lock
// Close reads it under, which -race flagged.
func TestListenCloseRace(t *testing.T) {
	for i := 0; i < 20; i++ {
		srv := New(core.Open())
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			srv.Listen("127.0.0.1:0")
		}()
		go func() {
			defer wg.Done()
			srv.Close()
		}()
		wg.Wait()
		srv.Close()
	}
}

// TestConcurrentClients is the multi-client integration test: several
// clients run read queries in parallel while others interleave updates
// over the wire. Result consistency: the stable partition always
// returns complete results, and inserted pairs are never observed
// half-applied.
func TestConcurrentClients(t *testing.T) {
	db := core.Open()
	db.AttachBackend(storage.NewMemory())
	srv := New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	seed, err := ssdmclient.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	doc := `@prefix ex: <http://ex/> .` + "\n"
	for i := 0; i < 40; i++ {
		doc += fmt.Sprintf("ex:fix%d a ex:Fixed ; ex:v %d .\n", i, i)
	}
	if err := seed.LoadTurtle(doc, ""); err != nil {
		t.Fatal(err)
	}
	seed.Close()

	const (
		readerClients = 5
		writerClients = 2
		iterations    = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < writerClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := ssdmclient.Connect(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < iterations; i++ {
				id := w*iterations + i
				n, err := cl.Update(fmt.Sprintf(
					`PREFIX ex: <http://ex/> INSERT DATA { ex:dyn%d a ex:Dyn ; ex:v %d }`, id, id))
				if err != nil {
					t.Error(err)
					return
				}
				if n != 2 {
					t.Errorf("insert affected %d, want 2", n)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readerClients; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := ssdmclient.Connect(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < iterations; i++ {
				res, err := cl.Query(`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s a ex:Fixed }`)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Len() != 40 {
					t.Errorf("fixed rows %d, want 40", res.Len())
					return
				}
				res, err = cl.Query(`PREFIX ex: <http://ex/>
SELECT ?s WHERE { ?s a ex:Dyn . FILTER NOT EXISTS { ?s ex:v ?v } }`)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Len() != 0 {
					t.Errorf("saw %d half-applied inserts", res.Len())
					return
				}
			}
		}()
	}
	wg.Wait()

	cl, err := ssdmclient.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Query(`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s a ex:Dyn }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != writerClients*iterations {
		t.Fatalf("final dyn rows %d, want %d", res.Len(), writerClients*iterations)
	}
}
