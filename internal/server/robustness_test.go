package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"scisparql/internal/core"
	"scisparql/internal/engine"
	"scisparql/internal/rdf"
	"scisparql/internal/ssdmclient"
)

// crossProduct3 enumerates n^3 bindings — the runaway query of the
// guard tests.
const crossProduct3 = `SELECT * WHERE {
  ?a <http://ex/p> ?x . ?b <http://ex/p> ?y . ?c <http://ex/p> ?z }`

// startBigServer serves a dataset with n fuel triples and returns the
// server plus a connected-client factory.
func startBigServer(t *testing.T, n int) (*Server, func() *ssdmclient.Client) {
	t.Helper()
	db := core.Open()
	for i := 0; i < n; i++ {
		db.Dataset.Default.Add(rdf.IRI(fmt.Sprintf("http://ex/s%d", i)), rdf.IRI("http://ex/p"), rdf.Integer(i))
	}
	srv := New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, func() *ssdmclient.Client {
		cl, err := ssdmclient.Connect(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
}

// TestWireDeadlineOnCrossProduct is the acceptance scenario: a SELECT
// over a 3-way unbounded cross product with a 100ms per-request
// deadline comes back as a timeout in well under 500ms — while
// concurrent well-behaved queries on other connections complete
// normally.
func TestWireDeadlineOnCrossProduct(t *testing.T) {
	_, connect := startBigServer(t, 300)

	// Healthy traffic on four other connections, running throughout.
	var wg sync.WaitGroup
	healthyErr := make(chan error, 4)
	for i := 0; i < 4; i++ {
		cl := connect()
		wg.Add(1)
		go func(cl *ssdmclient.Client) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				res, err := cl.Query(`SELECT * WHERE { ?s <http://ex/p> ?v }`)
				if err != nil {
					healthyErr <- err
					return
				}
				if res.Len() != 300 {
					healthyErr <- fmt.Errorf("healthy query saw %d rows", res.Len())
					return
				}
			}
		}(cl)
	}

	cl := connect()
	start := time.Now()
	_, err := cl.QueryGuarded(context.Background(), crossProduct3,
		ssdmclient.Guards{Timeout: 100 * time.Millisecond})
	elapsed := time.Since(start)
	if !errors.Is(err, engine.ErrQueryTimeout) {
		t.Fatalf("want ErrQueryTimeout over the wire, got %v", err)
	}
	var se *ssdmclient.ServerError
	if !errors.As(err, &se) || se.Code != "timeout" {
		t.Fatalf("want wire code %q, got %+v", "timeout", err)
	}
	if elapsed >= 500*time.Millisecond {
		t.Fatalf("timeout response took %v, want <500ms", elapsed)
	}

	wg.Wait()
	select {
	case err := <-healthyErr:
		t.Fatalf("concurrent healthy query failed: %v", err)
	default:
	}
}

// TestWireResourceLimit: per-request row and bindings caps come back
// with the resource_limit code.
func TestWireResourceLimit(t *testing.T) {
	_, connect := startBigServer(t, 100)
	cl := connect()
	_, err := cl.QueryGuarded(context.Background(),
		`SELECT * WHERE { ?s <http://ex/p> ?v }`, ssdmclient.Guards{MaxRows: 10})
	if !errors.Is(err, engine.ErrResourceLimit) {
		t.Fatalf("want ErrResourceLimit, got %v", err)
	}
	_, err = cl.QueryGuarded(context.Background(), crossProduct3,
		ssdmclient.Guards{MaxBindings: 1000})
	if !errors.Is(err, engine.ErrResourceLimit) {
		t.Fatalf("want ErrResourceLimit for bindings budget, got %v", err)
	}
}

// TestForeignPanicIsolated is the second acceptance scenario: a panic
// inside a registered foreign function yields an error response with
// the internal code, and the server keeps serving — on the same
// connection and on new ones.
func TestForeignPanicIsolated(t *testing.T) {
	db := core.Open()
	db.Dataset.Default.Add(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"), rdf.Integer(1))
	db.RegisterForeign("boom", 1, 1, func(args []rdf.Term) (rdf.Term, error) {
		panic("deliberate test panic")
	})
	srv := New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := ssdmclient.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	_, err = cl.Query(`SELECT (boom(?v) AS ?b) WHERE { ?s <http://ex/p> ?v }`)
	if !errors.Is(err, engine.ErrInternal) {
		t.Fatalf("want ErrInternal from panicking function, got %v", err)
	}
	// Same connection still serves.
	if err := cl.Ping(); err != nil {
		t.Fatalf("server died after trapped panic: %v", err)
	}
	res, err := cl.Query(`SELECT * WHERE { ?s <http://ex/p> ?v }`)
	if err != nil || res.Len() != 1 {
		t.Fatalf("query after panic: %v", err)
	}
	// And new connections are accepted.
	cl2, err := ssdmclient.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.Ping(); err != nil {
		t.Fatalf("new connection after panic: %v", err)
	}
}

// TestUnencodableTermAllOrNothing: a result containing a term with no
// wire representation (a closure) is a pure error response — never OK
// with partial rows.
func TestUnencodableTermAllOrNothing(t *testing.T) {
	_, connect := startBigServer(t, 3)
	cl := connect()
	cl.SetReconnect(0, 0) // a partial response would desync; keep it visible
	_, err := cl.Query(`SELECT (abs(_) AS ?f) WHERE { ?s <http://ex/p> ?v }`)
	if err == nil {
		t.Fatal("want encoding error for closure-valued result")
	}
	if !strings.Contains(err.Error(), "cannot encode") {
		t.Fatalf("want encode failure, got %v", err)
	}
	// The stream stayed aligned (the error was a well-formed response,
	// not a truncated row dump): the connection keeps working.
	res, err := cl.Query(`SELECT * WHERE { ?s <http://ex/p> ?v }`)
	if err != nil || res.Len() != 3 {
		t.Fatalf("connection unusable after encode error: %v", err)
	}
}

// encodeRows unit coverage: one bad term anywhere fails the whole
// result with zero rows committed.
func TestEncodeRowsAllOrNothing(t *testing.T) {
	rows := [][]rdf.Term{
		{rdf.Integer(1)},
		{engine.Closure{Fn: "abs", Bound: []rdf.Term{nil}, Holes: []int{0}}},
	}
	out, err := encodeRows(rows)
	if err == nil {
		t.Fatal("want error for unencodable term")
	}
	if out != nil {
		t.Fatalf("rows must not be partially committed, got %d", len(out))
	}
}

// TestGracefulShutdownDrains: Shutdown cancels an in-flight runaway
// query (its client receives a cancellation error response, not a cut
// stream), refuses new connections, and returns once drained — well
// before the drain deadline.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, connect := startBigServer(t, 300)
	cl := connect()
	cl.SetReconnect(0, 0) // the server is going away; don't redial

	type result struct{ err error }
	got := make(chan result, 1)
	go func() {
		_, err := cl.QueryContext(context.Background(), crossProduct3)
		got <- result{err}
	}()
	time.Sleep(100 * time.Millisecond) // let the query reach the engine

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain did not complete: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= 2*time.Second {
		t.Fatalf("drain took %v", elapsed)
	}

	r := <-got
	if !errors.Is(r.err, engine.ErrQueryCancelled) {
		t.Fatalf("in-flight query should see cancellation, got %v", r.err)
	}
}

// startGuardedServer is startBigServer with explicit instance options,
// for tests pinning the server-side guard configuration.
func startGuardedServer(t *testing.T, opts core.Options, n int) func() *ssdmclient.Client {
	t.Helper()
	db := core.OpenWith(opts)
	for i := 0; i < n; i++ {
		db.Dataset.Default.Add(rdf.IRI(fmt.Sprintf("http://ex/s%d", i)), rdf.IRI("http://ex/p"), rdf.Integer(i))
	}
	srv := New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return func() *ssdmclient.Client {
		cl, err := ssdmclient.Connect(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
}

// TestWireGuardsCannotLoosenDefaults: a remote client sending guard
// fields larger than the operator-configured limits must not bypass
// them — the per-request fields can only tighten the server's DoS
// guards.
func TestWireGuardsCannotLoosenDefaults(t *testing.T) {
	connect := startGuardedServer(t,
		core.Options{QueryTimeout: 100 * time.Millisecond, MaxBindings: 10_000}, 300)
	cl := connect()
	start := time.Now()
	_, err := cl.QueryGuarded(context.Background(), crossProduct3,
		ssdmclient.Guards{Timeout: time.Hour, MaxBindings: 1 << 60})
	if !errors.Is(err, engine.ErrQueryTimeout) && !errors.Is(err, engine.ErrResourceLimit) {
		t.Fatalf("want a guard violation despite loose request guards, got %v", err)
	}
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Fatalf("request guards loosened the server deadline: ran %v", elapsed)
	}

	rowConnect := startGuardedServer(t, core.Options{MaxResultRows: 5}, 50)
	rcl := rowConnect()
	_, err = rcl.QueryGuarded(context.Background(),
		`SELECT * WHERE { ?s <http://ex/p> ?v }`, ssdmclient.Guards{MaxRows: 1000})
	if !errors.Is(err, engine.ErrResourceLimit) {
		t.Fatalf("want ErrResourceLimit under the server row cap, got %v", err)
	}
}

// TestWireGuardsOnExecuteAndUpdate: the per-request guard fields bound
// execute and update ops, not just query — a script or DELETE/INSERT
// with a runaway WHERE comes back with the matching wire code.
func TestWireGuardsOnExecuteAndUpdate(t *testing.T) {
	connect := startGuardedServer(t, core.Options{}, 300)
	cl := connect()

	start := time.Now()
	_, err := cl.ExecuteGuarded(context.Background(), crossProduct3,
		ssdmclient.Guards{Timeout: 100 * time.Millisecond})
	var se *ssdmclient.ServerError
	if !errors.As(err, &se) || se.Code != "timeout" {
		t.Fatalf("want wire code %q on execute, got %v", "timeout", err)
	}
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Fatalf("execute deadline overshoot: %v", elapsed)
	}

	const runawayUpdate = `INSERT { ?a <http://ex/q> ?y } WHERE {
	  ?a <http://ex/p> ?x . ?b <http://ex/p> ?y . ?c <http://ex/p> ?z }`
	_, err = cl.UpdateGuarded(context.Background(), runawayUpdate,
		ssdmclient.Guards{MaxBindings: 1000})
	if !errors.As(err, &se) || se.Code != "resource_limit" {
		t.Fatalf("want wire code %q on update, got %v", "resource_limit", err)
	}

	// Update inside an execute script is bounded too.
	_, err = cl.ExecuteGuarded(context.Background(), runawayUpdate,
		ssdmclient.Guards{MaxBindings: 1000})
	if !errors.Is(err, engine.ErrResourceLimit) {
		t.Fatalf("want ErrResourceLimit on script update, got %v", err)
	}

	// The connection stays healthy for well-behaved traffic afterwards.
	if _, err := cl.Update(`INSERT DATA { <http://ex/a> <http://ex/p> 1 }`); err != nil {
		t.Fatalf("client should stay usable after guard violations: %v", err)
	}
}
