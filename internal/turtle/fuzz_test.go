package turtle

import (
	"testing"

	"scisparql/internal/rdf"
)

// FuzzParseTurtle asserts the Turtle loader never panics on arbitrary
// documents: loaders run on whatever file or wire payload a client
// ships, so every malformation must surface as an error.
func FuzzParseTurtle(f *testing.F) {
	seeds := []string{
		`@prefix ex: <http://ex/> . ex:s ex:p ex:o .`,
		`@prefix ex: <http://ex/> . ex:m ex:data ((1 2) (3 4)) .`,
		`@prefix foaf: <http://xmlns.com/foaf/0.1/> .
		 <http://ex/a> a foaf:Person ; foaf:name "Alice"@en ; foaf:knows <http://ex/b> , <http://ex/c> .`,
		`<http://ex/s> <http://ex/p> "3.14"^^<http://www.w3.org/2001/XMLSchema#double> .`,
		`@base <http://ex/> . <s> <p> _:b0 . _:b0 <q> true, false, -42, 1.0e3 .`,
		`<http://ex/s> <http://ex/p> [ <http://ex/q> ( "a" "b" ) ] .`,
		`@prefix : <http://ex/> . :s :p """triple
		quoted "string" here""" .`,
		`<http://ex/s> <http://ex/when> "2012-05-13T12:00:00Z"^^<http://www.w3.org/2001/XMLSchema#dateTime> .`,
		"PREFIX ex: <http://ex/>\nex:s ex:p ex:o .",
		`# a comment only`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// A fresh graph per input: errors are fine, panics are not.
		_ = ParseString(src, rdf.NewGraph())
	})
}
