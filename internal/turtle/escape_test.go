package turtle

import (
	"strings"
	"testing"

	"scisparql/internal/rdf"
)

// TestUCHAREscapes exercises \uXXXX/\UXXXXXXXX in string literals and
// IRIREFs: spec-valid input must decode to the designated code points.
func TestUCHAREscapes(t *testing.T) {
	g := rdf.NewGraph()
	src := `<http://ex/sa> <http://ex/p> "café \U0001F600" .`
	if err := ParseString(src, g); err != nil {
		t.Fatalf("parse: %v", err)
	}
	found := false
	g.Triples(func(s, p, o rdf.Term) bool {
		if string(s.(rdf.IRI)) != "http://ex/sa" {
			t.Errorf("subject IRI escape not decoded: %v", s)
		}
		if o.(rdf.String).Val != "café \U0001F600" {
			t.Errorf("literal escapes not decoded: %q", o.(rdf.String).Val)
		}
		found = true
		return true
	})
	if !found {
		t.Fatal("no triple parsed")
	}
}

// TestBadUCHAREscapes: bad hex, truncation, surrogate halves and
// out-of-range values must be reported, not silently mangled.
func TestBadUCHAREscapes(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"bad hex", `<http://ex/s> <http://ex/p> "\u00GG" .`, "not a hex digit"},
		{"truncated", `<http://ex/s> <http://ex/p> "\u00`, "truncated"},
		{"surrogate", `<http://ex/s> <http://ex/p> "\uD800" .`, "surrogate"},
		{"out of range", `<http://ex/s> <http://ex/p> "\U00110000" .`, "beyond U+10FFFF"},
		{"iri bad escape", `<http://ex/s\n> <http://ex/p> "x" .`, "only \\u and \\U"},
		{"iri surrogate", `<http://ex/s\uDFFF> <http://ex/p> "x" .`, "surrogate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ParseString(c.src, rdf.NewGraph())
			if err == nil {
				t.Fatalf("parse accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestControlCharRoundTrip: literals holding control characters must
// survive load → serialize → load unchanged, in both Turtle and
// N-Triples. The old writer emitted Go-syntax \x escapes here, which
// no RDF parser (including ours) accepts.
func TestControlCharRoundTrip(t *testing.T) {
	g := rdf.NewGraph()
	nasty := "ctl:\x01\x02 bell:\x07 tab:\t nl:\n del:\x7F fin"
	g.Add(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"), rdf.String{Val: nasty})
	g.Add(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/q"),
		rdf.Typed{Lexical: "v\x0B", Datatype: rdf.IRI("http://ex/dt")})

	for _, mode := range []string{"turtle", "ntriples"} {
		t.Run(mode, func(t *testing.T) {
			var sb strings.Builder
			var err error
			if mode == "turtle" {
				err = Write(&sb, g, nil)
			} else {
				err = WriteNTriples(&sb, g)
			}
			if err != nil {
				t.Fatalf("write: %v", err)
			}
			back := rdf.NewGraph()
			if err := ParseString(sb.String(), back); err != nil {
				t.Fatalf("reparse of our own output failed: %v\noutput:\n%s", err, sb.String())
			}
			var got, gotTyped string
			back.Triples(func(s, p, o rdf.Term) bool {
				switch v := o.(type) {
				case rdf.String:
					got = v.Val
				case rdf.Typed:
					gotTyped = v.Lexical
				}
				return true
			})
			if got != nasty {
				t.Errorf("string literal mangled: %q != %q", got, nasty)
			}
			if gotTyped != "v\x0B" {
				t.Errorf("typed literal mangled: %q", gotTyped)
			}
		})
	}
}

// TestIRIEscapeRoundTrip: IRIs holding characters the IRIREF grammar
// excludes are written with UCHAR escapes and re-read losslessly.
func TestIRIEscapeRoundTrip(t *testing.T) {
	g := rdf.NewGraph()
	iri := rdf.IRI("http://ex/with space/and<angle>")
	g.Add(iri, rdf.IRI("http://ex/p"), rdf.Integer(1))
	var sb strings.Builder
	if err := Write(&sb, g, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	back := rdf.NewGraph()
	if err := ParseString(sb.String(), back); err != nil {
		t.Fatalf("reparse: %v\noutput:\n%s", err, sb.String())
	}
	ok := false
	back.Triples(func(s, p, o rdf.Term) bool {
		ok = s.(rdf.IRI) == iri
		return true
	})
	if !ok {
		t.Fatalf("IRI did not round-trip; output:\n%s", sb.String())
	}
}
