package turtle

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"scisparql/internal/array"
	"scisparql/internal/rdf"
)

// Writer serializes a graph back to Turtle, grouping triples by
// subject and abbreviating IRIs with the supplied prefixes. Array
// terms — the RDF-with-Arrays extension — are emitted using the
// condensed nested-collection syntax of §2.3.5.1, so a written
// document is plain standards-compliant Turtle that any reader can
// consume and that SSDM's loader re-consolidates into arrays.
type Writer struct {
	w        io.Writer
	prefixes []prefixDef // longest namespace first
	err      error
}

type prefixDef struct {
	name string
	ns   string
}

// NewWriter creates a writer emitting to w with the given
// prefix→namespace abbreviations.
func NewWriter(w io.Writer, prefixes map[string]string) *Writer {
	tw := &Writer{w: w}
	for name, ns := range prefixes {
		tw.prefixes = append(tw.prefixes, prefixDef{name, ns})
	}
	sort.Slice(tw.prefixes, func(i, j int) bool {
		if len(tw.prefixes[i].ns) != len(tw.prefixes[j].ns) {
			return len(tw.prefixes[i].ns) > len(tw.prefixes[j].ns)
		}
		return tw.prefixes[i].name < tw.prefixes[j].name
	})
	return tw
}

func (tw *Writer) printf(format string, args ...any) {
	if tw.err != nil {
		return
	}
	_, tw.err = fmt.Fprintf(tw.w, format, args...)
}

// WriteGraph emits the whole graph.
func (tw *Writer) WriteGraph(g *rdf.Graph) error {
	names := make([]string, 0, len(tw.prefixes))
	for _, p := range tw.prefixes {
		names = append(names, p.name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, p := range tw.prefixes {
			if p.name == name {
				tw.printf("@prefix %s: <%s> .\n", p.name, p.ns)
			}
		}
	}
	if len(tw.prefixes) > 0 {
		tw.printf("\n")
	}

	// Group by subject for ';' abbreviation, with deterministic order.
	type po struct{ p, o rdf.Term }
	bySubj := map[string][]po{}
	subjTerm := map[string]rdf.Term{}
	g.Triples(func(s, p, o rdf.Term) bool {
		k := s.Key()
		bySubj[k] = append(bySubj[k], po{p, o})
		subjTerm[k] = s
		return true
	})
	keys := make([]string, 0, len(bySubj))
	for k := range bySubj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		items := bySubj[k]
		sort.Slice(items, func(i, j int) bool {
			if items[i].p.Key() != items[j].p.Key() {
				return items[i].p.Key() < items[j].p.Key()
			}
			return items[i].o.Key() < items[j].o.Key()
		})
		tw.printf("%s ", tw.render(subjTerm[k]))
		for i, item := range items {
			if i > 0 {
				tw.printf(" ;\n    ")
			}
			tw.printf("%s %s", tw.render(item.p), tw.render(item.o))
		}
		tw.printf(" .\n")
	}
	return tw.err
}

// render converts a term to Turtle syntax with prefix abbreviation.
func (tw *Writer) render(t rdf.Term) string {
	switch v := t.(type) {
	case rdf.IRI:
		s := string(v)
		for _, p := range tw.prefixes {
			if rest, ok := strings.CutPrefix(s, p.ns); ok && isSafeLocal(rest) {
				return p.name + ":" + rest
			}
		}
		if v == rdf.RDFType {
			return "a"
		}
		return v.String()
	case rdf.Array:
		return renderArray(v.A)
	default:
		return t.String()
	}
}

func isSafeLocal(s string) bool {
	for _, r := range s {
		if !isPNChar(r) || r == '.' {
			return false
		}
	}
	return true
}

// renderArray emits an array as nested Turtle collections.
func renderArray(a *array.Array) string {
	var sb strings.Builder
	var rec func(dim int, idx []int)
	rec = func(dim int, idx []int) {
		sb.WriteByte('(')
		for i := 0; i < a.Shape[dim]; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			idx[dim] = i
			if dim == len(a.Shape)-1 {
				v, err := a.At(idx...)
				if err != nil {
					sb.WriteString("0")
				} else if v.T == array.Int {
					fmt.Fprintf(&sb, "%d", v.I)
				} else {
					s := fmt.Sprintf("%g", v.F)
					if !strings.ContainsAny(s, ".eE") {
						s += ".0"
					}
					sb.WriteString(s)
				}
			} else {
				rec(dim+1, idx)
			}
		}
		sb.WriteByte(')')
	}
	rec(0, make([]int, len(a.Shape)))
	return sb.String()
}

// Write serializes g to w with the given prefixes.
func Write(w io.Writer, g *rdf.Graph, prefixes map[string]string) error {
	return NewWriter(w, prefixes).WriteGraph(g)
}
