package turtle

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"scisparql/internal/array"
	"scisparql/internal/rdf"
)

// Writer serializes a graph back to Turtle, grouping triples by
// subject and abbreviating IRIs with the supplied prefixes. Array
// terms — the RDF-with-Arrays extension — are emitted using the
// condensed nested-collection syntax of §2.3.5.1, so a written
// document is plain standards-compliant Turtle that any reader can
// consume and that SSDM's loader re-consolidates into arrays.
type Writer struct {
	w        io.Writer
	prefixes []prefixDef // longest namespace first
	err      error
}

type prefixDef struct {
	name string
	ns   string
}

// NewWriter creates a writer emitting to w with the given
// prefix→namespace abbreviations.
func NewWriter(w io.Writer, prefixes map[string]string) *Writer {
	tw := &Writer{w: w}
	for name, ns := range prefixes {
		tw.prefixes = append(tw.prefixes, prefixDef{name, ns})
	}
	sort.Slice(tw.prefixes, func(i, j int) bool {
		if len(tw.prefixes[i].ns) != len(tw.prefixes[j].ns) {
			return len(tw.prefixes[i].ns) > len(tw.prefixes[j].ns)
		}
		return tw.prefixes[i].name < tw.prefixes[j].name
	})
	return tw
}

func (tw *Writer) printf(format string, args ...any) {
	if tw.err != nil {
		return
	}
	_, tw.err = fmt.Fprintf(tw.w, format, args...)
}

// WriteGraph emits the whole graph.
func (tw *Writer) WriteGraph(g *rdf.Graph) error {
	names := make([]string, 0, len(tw.prefixes))
	for _, p := range tw.prefixes {
		names = append(names, p.name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, p := range tw.prefixes {
			if p.name == name {
				tw.printf("@prefix %s: <%s> .\n", p.name, p.ns)
			}
		}
	}
	if len(tw.prefixes) > 0 {
		tw.printf("\n")
	}

	// Group by subject for ';' abbreviation, with deterministic order.
	type po struct{ p, o rdf.Term }
	bySubj := map[string][]po{}
	subjTerm := map[string]rdf.Term{}
	g.Triples(func(s, p, o rdf.Term) bool {
		k := s.Key()
		bySubj[k] = append(bySubj[k], po{p, o})
		subjTerm[k] = s
		return true
	})
	keys := make([]string, 0, len(bySubj))
	for k := range bySubj {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		items := bySubj[k]
		sort.Slice(items, func(i, j int) bool {
			if items[i].p.Key() != items[j].p.Key() {
				return items[i].p.Key() < items[j].p.Key()
			}
			return items[i].o.Key() < items[j].o.Key()
		})
		tw.printf("%s ", tw.render(subjTerm[k]))
		for i, item := range items {
			if i > 0 {
				tw.printf(" ;\n    ")
			}
			tw.printf("%s %s", tw.render(item.p), tw.render(item.o))
		}
		tw.printf(" .\n")
	}
	return tw.err
}

// render converts a term to Turtle syntax with prefix abbreviation.
func (tw *Writer) render(t rdf.Term) string {
	switch v := t.(type) {
	case rdf.IRI:
		s := string(v)
		for _, p := range tw.prefixes {
			if rest, ok := strings.CutPrefix(s, p.ns); ok && isSafeLocal(rest) {
				return p.name + ":" + rest
			}
		}
		if v == rdf.RDFType {
			return "a"
		}
		return "<" + EscapeIRI(s) + ">"
	case rdf.String:
		s := `"` + EscapeLiteral(v.Val) + `"`
		if v.Lang != "" {
			s += "@" + v.Lang
		}
		return s
	case rdf.Typed:
		return `"` + EscapeLiteral(v.Lexical) + `"^^<` + EscapeIRI(string(v.Datatype)) + ">"
	case rdf.Array:
		return renderArray(v.A)
	default:
		return t.String()
	}
}

// EscapeLiteral renders the body of a quoted string literal using only
// the escapes the Turtle/N-Triples/SPARQL grammars define: the ECHAR
// set (\" \\ \n \r \t \b \f) plus \uXXXX/\UXXXXXXXX for the remaining
// control characters. Go's strconv.Quote is not usable here — it emits
// \x and \a/\v escapes no RDF parser accepts — and round-trips through
// the lexer's UCHAR decoding are lossless.
func EscapeLiteral(s string) string {
	if !strings.ContainsFunc(s, needsLiteralEscape) {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for _, r := range s {
		switch r {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		case '\b':
			sb.WriteString(`\b`)
		case '\f':
			sb.WriteString(`\f`)
		default:
			if r < 0x20 || r == 0x7F {
				fmt.Fprintf(&sb, `\u%04X`, r)
			} else {
				sb.WriteRune(r)
			}
		}
	}
	return sb.String()
}

func needsLiteralEscape(r rune) bool {
	return r < 0x20 || r == 0x7F || r == '"' || r == '\\'
}

// EscapeIRI renders an IRI body for an <...> IRIREF: characters the
// IRIREF production excludes (control characters, space, <, >, ", {,
// }, |, ^, `, \) become \uXXXX escapes so any IRI the store holds can
// be written and re-read losslessly.
func EscapeIRI(s string) string {
	if !strings.ContainsFunc(s, needsIRIEscape) {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for _, r := range s {
		if needsIRIEscape(r) {
			fmt.Fprintf(&sb, `\u%04X`, r)
		} else {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func needsIRIEscape(r rune) bool {
	if r <= 0x20 || r == 0x7F {
		return true
	}
	switch r {
	case '<', '>', '"', '{', '}', '|', '^', '`', '\\':
		return true
	}
	return false
}

func isSafeLocal(s string) bool {
	for _, r := range s {
		if !isPNChar(r) || r == '.' {
			return false
		}
	}
	return true
}

// renderArray emits an array as nested Turtle collections.
func renderArray(a *array.Array) string {
	var sb strings.Builder
	var rec func(dim int, idx []int)
	rec = func(dim int, idx []int) {
		sb.WriteByte('(')
		for i := 0; i < a.Shape[dim]; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			idx[dim] = i
			if dim == len(a.Shape)-1 {
				v, err := a.At(idx...)
				if err != nil {
					sb.WriteString("0")
				} else if v.T == array.Int {
					fmt.Fprintf(&sb, "%d", v.I)
				} else {
					s := fmt.Sprintf("%g", v.F)
					if !strings.ContainsAny(s, ".eE") {
						s += ".0"
					}
					sb.WriteString(s)
				}
			} else {
				rec(dim+1, idx)
			}
		}
		sb.WriteByte(')')
	}
	rec(0, make([]int, len(a.Shape)))
	return sb.String()
}

// Write serializes g to w with the given prefixes.
func Write(w io.Writer, g *rdf.Graph, prefixes map[string]string) error {
	return NewWriter(w, prefixes).WriteGraph(g)
}
