package turtle

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"scisparql/internal/array"
	"scisparql/internal/rdf"
)

func parse(t *testing.T, src string) *rdf.Graph {
	t.Helper()
	g := rdf.NewGraph()
	if err := ParseString(src, g); err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return g
}

const foafDoc = `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .

_:a a foaf:Person ;
    foaf:name "Alice" ;
    foaf:knows _:b , _:d .
_:b foaf:knows _:a ; foaf:name "Bob" .
_:d foaf:name "Daniel" .
`

func TestParseFOAF(t *testing.T) {
	g := parse(t, foafDoc)
	if g.Size() != 7 {
		t.Fatalf("size %d, want 7", g.Size())
	}
	name := rdf.IRI("http://xmlns.com/foaf/0.1/name")
	n := 0
	g.MatchTerms(nil, name, nil, func(_, _, _ rdf.Term) bool {
		n++
		return true
	})
	if n != 3 {
		t.Fatalf("found %d names", n)
	}
}

func TestParseTypeKeyword(t *testing.T) {
	g := parse(t, `@prefix ex: <http://ex/> . ex:s a ex:Class .`)
	if !g.Has(rdf.IRI("http://ex/s"), rdf.RDFType, rdf.IRI("http://ex/Class")) {
		t.Fatal("missing rdf:type triple")
	}
}

func TestParseLiterals(t *testing.T) {
	g := parse(t, `@prefix ex: <http://ex/> .
ex:s ex:int 42 ;
     ex:neg -7 ;
     ex:dec 3.25 ;
     ex:dbl 1.5e3 ;
     ex:str "hello\nworld" ;
     ex:lang "hej"@sv ;
     ex:bool true ;
     ex:boolF false ;
     ex:typed "42"^^<http://www.w3.org/2001/XMLSchema#integer> ;
     ex:dt "2012-04-01T10:00:00Z"^^<http://www.w3.org/2001/XMLSchema#dateTime> ;
     ex:other "x"^^<http://ex/custom> .
`)
	s := rdf.IRI("http://ex/s")
	check := func(p string, want rdf.Term) {
		t.Helper()
		if !g.Has(s, rdf.IRI("http://ex/"+p), want) {
			t.Fatalf("missing %s -> %v", p, want)
		}
	}
	check("int", rdf.Integer(42))
	check("neg", rdf.Integer(-7))
	check("dec", rdf.Float(3.25))
	check("dbl", rdf.Float(1500))
	check("str", rdf.String{Val: "hello\nworld"})
	check("lang", rdf.String{Val: "hej", Lang: "sv"})
	check("bool", rdf.Boolean(true))
	check("boolF", rdf.Boolean(false))
	check("typed", rdf.Integer(42))
	check("dt", rdf.DateTime{T: time.Date(2012, 4, 1, 10, 0, 0, 0, time.UTC)})
	check("other", rdf.Typed{Lexical: "x", Datatype: rdf.IRI("http://ex/custom")})
}

func TestParseCollection(t *testing.T) {
	g := parse(t, `@prefix ex: <http://ex/> . ex:s ex:p ((1 2) (3 4)) .`)
	// 1 root triple + 2 outer list cells (2 triples each) + 4 inner
	// cells x 2 triples each... outer list: 2 cells -> 4 triples; inner
	// lists: 2 lists x 2 cells x 2 = 8; root = 1. Total 13 (cf. §2.3.5.1).
	if g.Size() != 13 {
		t.Fatalf("size %d, want 13", g.Size())
	}
}

func TestParseEmptyCollection(t *testing.T) {
	g := parse(t, `@prefix ex: <http://ex/> . ex:s ex:p () .`)
	if !g.Has(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"), rdf.RDFNil) {
		t.Fatal("empty collection should be rdf:nil")
	}
}

func TestParseBlankPropertyList(t *testing.T) {
	g := parse(t, `@prefix foaf: <http://xmlns.com/foaf/0.1/> .
[] foaf:name "Alice" ; foaf:knows [ foaf:name "Bob" ] .`)
	if g.Size() != 3 {
		t.Fatalf("size %d, want 3", g.Size())
	}
}

func TestParseComments(t *testing.T) {
	g := parse(t, `# leading comment
@prefix ex: <http://ex/> . # trailing
ex:s ex:p 1 . # done`)
	if g.Size() != 1 {
		t.Fatalf("size %d", g.Size())
	}
}

func TestParseSparqlStylePrefix(t *testing.T) {
	g := parse(t, `PREFIX ex: <http://ex/>
ex:s ex:p 1 .`)
	if g.Size() != 1 {
		t.Fatalf("size %d", g.Size())
	}
}

func TestParseBase(t *testing.T) {
	g := parse(t, `@base <http://ex/> . <s> <p> 1 .`)
	if !g.Has(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"), rdf.Integer(1)) {
		t.Fatal("base resolution failed")
	}
}

func TestParseLongString(t *testing.T) {
	g := parse(t, `@prefix ex: <http://ex/> . ex:s ex:p """multi
line "quoted" text""" .`)
	found := false
	g.MatchTerms(nil, rdf.IRI("http://ex/p"), nil, func(_, _, o rdf.Term) bool {
		if s, ok := o.(rdf.String); ok && strings.Contains(s.Val, "\"quoted\"") {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("long string not parsed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`ex:s ex:p 1 .`,                        // undefined prefix
		`@prefix ex: <http://ex/> . ex:s .`,    // missing predicate/object
		`@prefix ex: <http://ex/> . ex:s ex:p`, // missing dot
		`<http://ex/s> <http://ex/p> "unterminated`,
		`<http://ex/s> <http://ex/p> 1e .`,
		`@prefix ex: <http://ex/> . ex:s ex:p (1 2 .`,
		`<s <p> 1 .`,
		`@prefix ex: <http://ex/> . ex:s ex:p "x"^^5 .`,
		`@prefix ex: <http://ex/> . ex:s ex:p "x"^^ex:y extra .`,
	}
	for i, src := range bad {
		g := rdf.NewGraph()
		if err := ParseString(src, g); err == nil {
			t.Fatalf("case %d: expected error for %q", i, src)
		}
	}
}

func TestWriterRoundTrip(t *testing.T) {
	g := parse(t, foafDoc)
	var sb strings.Builder
	err := Write(&sb, g, map[string]string{"foaf": "http://xmlns.com/foaf/0.1/"})
	if err != nil {
		t.Fatal(err)
	}
	g2 := rdf.NewGraph()
	if err := ParseString(sb.String(), g2); err != nil {
		t.Fatalf("reparse error: %v\noutput:\n%s", err, sb.String())
	}
	if g2.Size() != g.Size() {
		t.Fatalf("round trip size %d, want %d\noutput:\n%s", g2.Size(), g.Size(), sb.String())
	}
}

func TestWriterRendersArraysAsCollections(t *testing.T) {
	g := rdf.NewGraph()
	a, _ := array.FromInts([]int64{1, 2, 3, 4}, 2, 2)
	g.Add(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"), rdf.NewArray(a))
	var sb strings.Builder
	if err := Write(&sb, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "((1 2) (3 4))") {
		t.Fatalf("output:\n%s", sb.String())
	}
	// The output must reparse as the 13-triple list encoding.
	g2 := rdf.NewGraph()
	if err := ParseString(sb.String(), g2); err != nil {
		t.Fatal(err)
	}
	if g2.Size() != 13 {
		t.Fatalf("reparsed size %d, want 13", g2.Size())
	}
}

func TestWriterAbbreviatesPrefixes(t *testing.T) {
	g := parse(t, `@prefix ex: <http://ex/> . ex:s ex:p ex:o .`)
	var sb strings.Builder
	if err := Write(&sb, g, map[string]string{"ex": "http://ex/"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ex:s ex:p ex:o .") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

// Property: any graph of simple terms survives a write/parse round
// trip with identical size and membership.
func TestWriteParseRoundTripProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		g := rdf.NewGraph()
		for i := 0; i+2 < len(raw); i += 3 {
			s := rdf.IRI("http://ex/s" + string(rune('0'+raw[i]%5)))
			p := rdf.IRI("http://ex/p" + string(rune('0'+raw[i+1]%3)))
			var o rdf.Term
			switch raw[i+2] % 4 {
			case 0:
				o = rdf.Integer(int64(raw[i+2]))
			case 1:
				o = rdf.Float(float64(raw[i+2]) / 2)
			case 2:
				o = rdf.String{Val: "v" + string(rune('0'+raw[i+2]%8))}
			default:
				o = rdf.Boolean(raw[i+2]%2 == 0)
			}
			g.Add(s, p, o)
		}
		var sb strings.Builder
		if err := Write(&sb, g, map[string]string{"ex": "http://ex/"}); err != nil {
			return false
		}
		g2 := rdf.NewGraph()
		if err := ParseString(sb.String(), g2); err != nil {
			return false
		}
		if g2.Size() != g.Size() {
			return false
		}
		ok := true
		g.Triples(func(s, p, o rdf.Term) bool {
			if !g2.Has(s, p, o) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
