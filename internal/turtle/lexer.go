// Package turtle implements a parser and serializer for the Terse RDF
// Triple Language (Turtle), the serialization used throughout the
// dissertation for RDF examples (§3.1.1), including the condensed
// collection syntax that SciSPARQL's loader later consolidates into
// arrays (§5.3.2).
package turtle

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"scisparql/internal/scanesc"
)

type tokenKind uint8

const (
	tokEOF    tokenKind = iota
	tokIRI              // <...>
	tokPName            // prefix:local or prefix: or :local
	tokBlank            // _:label
	tokString           // quoted string (value already unescaped)
	tokInteger
	tokDecimal
	tokDouble
	tokKeyword // @prefix, @base, a, true, false, PREFIX, BASE
	tokLangTag // @en
	tokPunct   // . ; , ( ) [ ] ^^
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d col %d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

func (l *lexer) advance() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpace() {
	for {
		r := l.peek()
		if r == '#' {
			for r != '\n' && r != -1 {
				r = l.advance()
			}
			continue
		}
		if r == -1 || !unicode.IsSpace(r) {
			return
		}
		l.advance()
	}
}

func isPNChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	startLine, startCol := l.line, l.col
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, line: startLine, col: startCol}
	}
	r := l.peek()
	switch {
	case r == -1:
		return mk(tokEOF, ""), nil
	case r == '<':
		l.advance()
		var sb strings.Builder
		for {
			c := l.advance()
			if c == -1 {
				return token{}, l.errorf("unterminated IRI")
			}
			if c == '>' {
				return mk(tokIRI, sb.String()), nil
			}
			// IRIREF admits UCHAR escapes (\uXXXX, \UXXXXXXXX) and
			// nothing else after a backslash.
			if c == '\\' {
				e := l.advance()
				if e != 'u' && e != 'U' {
					return token{}, l.errorf("bad escape \\%c in IRI (only \\u and \\U are allowed)", e)
				}
				v, err := scanesc.DecodeUCHAR(e, l.advance)
				if err != nil {
					return token{}, l.errorf("%s", err)
				}
				sb.WriteRune(v)
				continue
			}
			sb.WriteRune(c)
		}
	case r == '"' || r == '\'':
		return l.scanString(startLine, startCol)
	case r == '@':
		l.advance()
		var sb strings.Builder
		for isPNChar(l.peek()) && l.peek() != '.' {
			sb.WriteRune(l.advance())
		}
		word := sb.String()
		if word == "prefix" || word == "base" {
			return mk(tokKeyword, "@"+word), nil
		}
		return mk(tokLangTag, word), nil
	case r == '_':
		l.advance()
		if l.peek() != ':' {
			return token{}, l.errorf("expected ':' after '_'")
		}
		l.advance()
		var sb strings.Builder
		for isPNChar(l.peek()) {
			sb.WriteRune(l.advance())
		}
		label := strings.TrimRight(sb.String(), ".")
		l.pos -= len(sb.String()) - len(label) // give back trailing dots
		return mk(tokBlank, label), nil
	case r == '^':
		l.advance()
		if l.peek() != '^' {
			return token{}, l.errorf("expected '^^'")
		}
		l.advance()
		return mk(tokPunct, "^^"), nil
	case strings.ContainsRune(".;,()[]", r):
		// '.' could also start a decimal like .5 — Turtle doesn't allow
		// bare leading dots, so treat as punctuation.
		l.advance()
		return mk(tokPunct, string(r)), nil
	case r == '+' || r == '-' || unicode.IsDigit(r):
		return l.scanNumber(startLine, startCol)
	default:
		// Prefixed name, bare keyword (a, true, false, PREFIX, BASE) or error.
		var sb strings.Builder
		for {
			c := l.peek()
			if c == ':' || isPNChar(c) {
				sb.WriteRune(l.advance())
				continue
			}
			break
		}
		word := sb.String()
		if word == "" {
			return token{}, l.errorf("unexpected character %q", r)
		}
		switch word {
		case "a", "true", "false":
			return mk(tokKeyword, word), nil
		}
		switch strings.ToUpper(word) {
		case "PREFIX", "BASE":
			if !strings.Contains(word, ":") {
				return mk(tokKeyword, strings.ToUpper(word)), nil
			}
		}
		if strings.Contains(word, ":") {
			// A trailing '.' belongs to the statement terminator.
			trimmed := strings.TrimRight(word, ".")
			l.pos -= len(word) - len(trimmed)
			return mk(tokPName, trimmed), nil
		}
		return token{}, l.errorf("unexpected token %q", word)
	}
}

func (l *lexer) scanString(line, col int) (token, error) {
	quote := l.advance()
	long := false
	if l.peek() == quote {
		l.advance()
		if l.peek() == quote {
			l.advance()
			long = true
		} else {
			// Empty string.
			return token{kind: tokString, text: "", line: line, col: col}, nil
		}
	}
	var sb strings.Builder
	for {
		c := l.advance()
		if c == -1 {
			return token{}, l.errorf("unterminated string")
		}
		if c == quote {
			if !long {
				break
			}
			if l.peek() == quote {
				l.advance()
				if l.peek() == quote {
					l.advance()
					break
				}
				sb.WriteRune(quote)
				sb.WriteRune(quote)
				continue
			}
			sb.WriteRune(quote)
			continue
		}
		if c == '\\' {
			e := l.advance()
			switch e {
			case 't':
				sb.WriteRune('\t')
			case 'n':
				sb.WriteRune('\n')
			case 'r':
				sb.WriteRune('\r')
			case 'b':
				sb.WriteRune('\b')
			case 'f':
				sb.WriteRune('\f')
			case '"', '\'', '\\':
				sb.WriteRune(e)
			case 'u', 'U':
				v, err := scanesc.DecodeUCHAR(e, l.advance)
				if err != nil {
					return token{}, l.errorf("%s", err)
				}
				sb.WriteRune(v)
			default:
				return token{}, l.errorf("bad escape \\%c", e)
			}
			continue
		}
		sb.WriteRune(c)
	}
	return token{kind: tokString, text: sb.String(), line: line, col: col}, nil
}

func (l *lexer) scanNumber(line, col int) (token, error) {
	var sb strings.Builder
	if l.peek() == '+' || l.peek() == '-' {
		sb.WriteRune(l.advance())
	}
	kind := tokInteger
	digits := 0
	for unicode.IsDigit(l.peek()) {
		sb.WriteRune(l.advance())
		digits++
	}
	if l.peek() == '.' {
		// Only a decimal point if followed by a digit; otherwise the dot
		// is the statement terminator.
		save := *l
		l.advance()
		if unicode.IsDigit(l.peek()) {
			kind = tokDecimal
			sb.WriteRune('.')
			for unicode.IsDigit(l.peek()) {
				sb.WriteRune(l.advance())
				digits++
			}
		} else {
			*l = save
		}
	}
	if p := l.peek(); p == 'e' || p == 'E' {
		kind = tokDouble
		sb.WriteRune(l.advance())
		if p := l.peek(); p == '+' || p == '-' {
			sb.WriteRune(l.advance())
		}
		if !unicode.IsDigit(l.peek()) {
			return token{}, l.errorf("malformed exponent")
		}
		for unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
	}
	if digits == 0 {
		return token{}, l.errorf("malformed number")
	}
	return token{kind: kind, text: sb.String(), line: line, col: col}, nil
}
