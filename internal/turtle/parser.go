package turtle

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"scisparql/internal/rdf"
)

// Parser reads Turtle documents into an rdf.Graph. Blank node labels
// are renamed to graph-unique blanks, so parsing several documents into
// one graph never collides.
type Parser struct {
	lex      *lexer
	tok      token
	graph    *rdf.Graph
	prefixes map[string]string
	base     string
	blanks   map[string]rdf.Blank
}

// Parse reads the Turtle document from r into g.
func Parse(r io.Reader, g *rdf.Graph) error {
	src, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return ParseString(string(src), g)
}

// ParseString parses a Turtle document given as a string into g.
func ParseString(src string, g *rdf.Graph) error {
	p := &Parser{
		lex:      newLexer(src),
		graph:    g,
		prefixes: map[string]string{},
		blanks:   map[string]rdf.Blank{},
	}
	if err := p.advance(); err != nil {
		return err
	}
	for p.tok.kind != tokEOF {
		if err := p.statement(); err != nil {
			return err
		}
	}
	return nil
}

func (p *Parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d col %d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *Parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errorf("expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

func (p *Parser) statement() error {
	if p.tok.kind == tokKeyword {
		switch p.tok.text {
		case "@prefix", "PREFIX":
			needDot := p.tok.text == "@prefix"
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokPName || !strings.HasSuffix(p.tok.text, ":") {
				return p.errorf("expected prefix declaration, found %s", p.tok)
			}
			name := strings.TrimSuffix(p.tok.text, ":")
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokIRI {
				return p.errorf("expected IRI in prefix declaration, found %s", p.tok)
			}
			p.prefixes[name] = p.resolveIRI(p.tok.text)
			if err := p.advance(); err != nil {
				return err
			}
			if needDot {
				return p.expectPunct(".")
			}
			return nil
		case "@base", "BASE":
			needDot := p.tok.text == "@base"
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokIRI {
				return p.errorf("expected IRI in base declaration, found %s", p.tok)
			}
			p.base = p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
			if needDot {
				return p.expectPunct(".")
			}
			return nil
		}
	}
	if err := p.triples(); err != nil {
		return err
	}
	return p.expectPunct(".")
}

func (p *Parser) resolveIRI(iri string) string {
	if p.base != "" && !strings.Contains(iri, ":") {
		return p.base + iri
	}
	return iri
}

func (p *Parser) triples() error {
	subj, isAnon, err := p.subject()
	if err != nil {
		return err
	}
	// An anonymous blank with property list "[ p o ] ." may stand alone.
	if isAnon && p.tok.kind == tokPunct && p.tok.text == "." {
		return nil
	}
	return p.predicateObjectList(subj)
}

func (p *Parser) subject() (rdf.Term, bool, error) {
	switch p.tok.kind {
	case tokIRI:
		t := rdf.IRI(p.resolveIRI(p.tok.text))
		return t, false, p.advance()
	case tokPName:
		t, err := p.expandPName(p.tok.text)
		if err != nil {
			return nil, false, err
		}
		return t, false, p.advance()
	case tokBlank:
		t := p.blankFor(p.tok.text)
		return t, false, p.advance()
	case tokPunct:
		switch p.tok.text {
		case "[":
			t, err := p.blankNodePropertyList()
			return t, true, err
		case "(":
			t, err := p.collection()
			return t, true, err
		}
	}
	return nil, false, p.errorf("expected subject, found %s", p.tok)
}

func (p *Parser) expandPName(pname string) (rdf.IRI, error) {
	i := strings.Index(pname, ":")
	if i < 0 {
		return "", p.errorf("malformed prefixed name %q", pname)
	}
	prefix, local := pname[:i], pname[i+1:]
	ns, ok := p.prefixes[prefix]
	if !ok {
		return "", p.errorf("undefined prefix %q", prefix)
	}
	return rdf.IRI(ns + local), nil
}

func (p *Parser) blankFor(label string) rdf.Blank {
	if b, ok := p.blanks[label]; ok {
		return b
	}
	b := p.graph.NewBlank()
	p.blanks[label] = b
	return b
}

func (p *Parser) predicateObjectList(subj rdf.Term) error {
	for {
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			obj, err := p.object()
			if err != nil {
				return err
			}
			p.graph.Add(subj, pred, obj)
			if p.tok.kind == tokPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if p.tok.kind == tokPunct && p.tok.text == ";" {
			if err := p.advance(); err != nil {
				return err
			}
			// Turtle allows trailing semicolons before '.' or ']'.
			if p.tok.kind == tokPunct && (p.tok.text == "." || p.tok.text == "]") {
				return nil
			}
			continue
		}
		return nil
	}
}

func (p *Parser) predicate() (rdf.Term, error) {
	switch p.tok.kind {
	case tokKeyword:
		if p.tok.text == "a" {
			return rdf.RDFType, p.advance()
		}
	case tokIRI:
		t := rdf.IRI(p.resolveIRI(p.tok.text))
		return t, p.advance()
	case tokPName:
		t, err := p.expandPName(p.tok.text)
		if err != nil {
			return nil, err
		}
		return t, p.advance()
	}
	return nil, p.errorf("expected predicate, found %s", p.tok)
}

func (p *Parser) object() (rdf.Term, error) {
	switch p.tok.kind {
	case tokIRI:
		t := rdf.IRI(p.resolveIRI(p.tok.text))
		return t, p.advance()
	case tokPName:
		t, err := p.expandPName(p.tok.text)
		if err != nil {
			return nil, err
		}
		return t, p.advance()
	case tokBlank:
		t := p.blankFor(p.tok.text)
		return t, p.advance()
	case tokInteger:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", p.tok.text)
		}
		return rdf.Integer(v), p.advance()
	case tokDecimal, tokDouble:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", p.tok.text)
		}
		return rdf.Float(v), p.advance()
	case tokKeyword:
		switch p.tok.text {
		case "true":
			return rdf.Boolean(true), p.advance()
		case "false":
			return rdf.Boolean(false), p.advance()
		}
	case tokString:
		return p.literalTail(p.tok.text)
	case tokPunct:
		switch p.tok.text {
		case "[":
			return p.blankNodePropertyList()
		case "(":
			return p.collection()
		}
	}
	return nil, p.errorf("expected object, found %s", p.tok)
}

// literalTail handles optional @lang / ^^datatype after a string.
func (p *Parser) literalTail(val string) (rdf.Term, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch {
	case p.tok.kind == tokLangTag:
		lang := p.tok.text
		return rdf.String{Val: val, Lang: lang}, p.advance()
	case p.tok.kind == tokPunct && p.tok.text == "^^":
		if err := p.advance(); err != nil {
			return nil, err
		}
		var dt rdf.IRI
		switch p.tok.kind {
		case tokIRI:
			dt = rdf.IRI(p.resolveIRI(p.tok.text))
		case tokPName:
			var err error
			dt, err = p.expandPName(p.tok.text)
			if err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("expected datatype IRI, found %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return typedLiteral(val, dt)
	default:
		return rdf.String{Val: val}, nil
	}
}

// typedLiteral interprets recognized XSD datatypes into native terms
// and preserves unknown datatypes verbatim.
func typedLiteral(val string, dt rdf.IRI) (rdf.Term, error) {
	switch dt {
	case rdf.XSDInteger, rdf.IRI("http://www.w3.org/2001/XMLSchema#int"),
		rdf.IRI("http://www.w3.org/2001/XMLSchema#long"):
		v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("turtle: bad xsd:integer literal %q", val)
		}
		return rdf.Integer(v), nil
	case rdf.XSDDouble, rdf.XSDDecimal, rdf.IRI("http://www.w3.org/2001/XMLSchema#float"):
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("turtle: bad numeric literal %q", val)
		}
		return rdf.Float(v), nil
	case rdf.XSDBoolean:
		switch strings.TrimSpace(val) {
		case "true", "1":
			return rdf.Boolean(true), nil
		case "false", "0":
			return rdf.Boolean(false), nil
		}
		return nil, fmt.Errorf("turtle: bad xsd:boolean literal %q", val)
	case rdf.XSDDateTime:
		t, err := time.Parse(time.RFC3339, strings.TrimSpace(val))
		if err != nil {
			return nil, fmt.Errorf("turtle: bad xsd:dateTime literal %q", val)
		}
		return rdf.DateTime{T: t}, nil
	case rdf.XSDString:
		return rdf.String{Val: val}, nil
	default:
		return rdf.Typed{Lexical: val, Datatype: dt}, nil
	}
}

func (p *Parser) blankNodePropertyList() (rdf.Term, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	node := p.graph.NewBlank()
	if p.tok.kind == tokPunct && p.tok.text == "]" {
		return node, p.advance()
	}
	if err := p.predicateObjectList(node); err != nil {
		return nil, err
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	return node, nil
}

// collection parses "( o1 o2 ... )" into the rdf:first/rdf:rest linked
// list encoding (§2.3.5.1) and returns the head node.
func (p *Parser) collection() (rdf.Term, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var items []rdf.Term
	for !(p.tok.kind == tokPunct && p.tok.text == ")") {
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unterminated collection")
		}
		obj, err := p.object()
		if err != nil {
			return nil, err
		}
		items = append(items, obj)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return rdf.RDFNil, nil
	}
	head := rdf.Term(p.graph.NewBlank())
	cur := head
	for i, item := range items {
		p.graph.Add(cur, rdf.RDFFirst, item)
		if i == len(items)-1 {
			p.graph.Add(cur, rdf.RDFRest, rdf.RDFNil)
		} else {
			next := p.graph.NewBlank()
			p.graph.Add(cur, rdf.RDFRest, next)
			cur = next
		}
	}
	return head, nil
}
