package turtle

import (
	"strings"
	"testing"
	"time"

	"scisparql/internal/array"
	"scisparql/internal/rdf"
)

func TestWriterFloatArrayRendering(t *testing.T) {
	g := rdf.NewGraph()
	a, _ := array.FromFloats([]float64{1.5, 2, 3.25}, 3)
	g.Add(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"), rdf.NewArray(a))
	var sb strings.Builder
	if err := Write(&sb, g, nil); err != nil {
		t.Fatal(err)
	}
	// Whole floats must keep a decimal point so they reparse as floats.
	if !strings.Contains(sb.String(), "(1.5 2.0 3.25)") {
		t.Fatalf("output:\n%s", sb.String())
	}
	g2 := rdf.NewGraph()
	if err := ParseString(sb.String(), g2); err != nil {
		t.Fatal(err)
	}
}

func TestWriterDateTimeAndTypedRoundTrip(t *testing.T) {
	g := rdf.NewGraph()
	s := rdf.IRI("http://ex/s")
	g.Add(s, rdf.IRI("http://ex/when"), rdf.DateTime{T: time.Date(2026, 7, 4, 10, 0, 0, 0, time.UTC)})
	g.Add(s, rdf.IRI("http://ex/raw"), rdf.Typed{Lexical: "payload", Datatype: rdf.IRI("http://ex/custom")})
	var sb strings.Builder
	if err := Write(&sb, g, nil); err != nil {
		t.Fatal(err)
	}
	g2 := rdf.NewGraph()
	if err := ParseString(sb.String(), g2); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if g2.Size() != 2 {
		t.Fatalf("size %d:\n%s", g2.Size(), sb.String())
	}
	found := false
	g2.MatchTerms(s, rdf.IRI("http://ex/when"), nil, func(_, _, o rdf.Term) bool {
		if dt, ok := o.(rdf.DateTime); ok && dt.T.Hour() == 10 {
			found = true
		}
		return true
	})
	if !found {
		t.Fatalf("dateTime lost:\n%s", sb.String())
	}
}

func TestWriterUnsafeLocalNamesStayFullIRIs(t *testing.T) {
	g := rdf.NewGraph()
	// Local part contains '.', which our prefix abbreviation refuses.
	g.Add(rdf.IRI("http://ex/a.b"), rdf.IRI("http://ex/p"), rdf.Integer(1))
	var sb strings.Builder
	if err := Write(&sb, g, map[string]string{"ex": "http://ex/"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<http://ex/a.b>") {
		t.Fatalf("output:\n%s", sb.String())
	}
	g2 := rdf.NewGraph()
	if err := ParseString(sb.String(), g2); err != nil {
		t.Fatal(err)
	}
}

func TestWriterBlankNodeSubjects(t *testing.T) {
	g := rdf.NewGraph()
	b := g.NewBlank()
	g.Add(b, rdf.IRI("http://ex/p"), rdf.String{Val: "v"})
	var sb strings.Builder
	if err := Write(&sb, g, nil); err != nil {
		t.Fatal(err)
	}
	g2 := rdf.NewGraph()
	if err := ParseString(sb.String(), g2); err != nil {
		t.Fatal(err)
	}
	if g2.Size() != 1 {
		t.Fatalf("size %d", g2.Size())
	}
}

func TestWriterRDFTypeAbbreviatedAsA(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.IRI("http://ex/s"), rdf.RDFType, rdf.IRI("http://ex/T"))
	var sb strings.Builder
	if err := Write(&sb, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), " a ") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestWriterEscapesStrings(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"), rdf.String{Val: "line\n\"quoted\""})
	var sb strings.Builder
	if err := Write(&sb, g, nil); err != nil {
		t.Fatal(err)
	}
	g2 := rdf.NewGraph()
	if err := ParseString(sb.String(), g2); err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	ok := false
	g2.MatchTerms(nil, rdf.IRI("http://ex/p"), nil, func(_, _, o rdf.Term) bool {
		if s, is := o.(rdf.String); is && s.Val == "line\n\"quoted\"" {
			ok = true
		}
		return true
	})
	if !ok {
		t.Fatal("escaped string lost")
	}
}
