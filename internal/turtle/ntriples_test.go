package turtle

import (
	"strings"
	"testing"

	"scisparql/internal/array"
	"scisparql/internal/rdf"
)

func TestWriteNTriplesBasic(t *testing.T) {
	g := parse(t, `@prefix ex: <http://ex/> .
ex:s ex:p 42 ; ex:q "hi"@en ; ex:r 2.5 ; ex:b true .`)
	var sb strings.Builder
	if err := WriteNTriples(&sb, g); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`<http://ex/s> <http://ex/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`"hi"@en`,
		`"2.5"^^<http://www.w3.org/2001/XMLSchema#double>`,
		`"true"^^<http://www.w3.org/2001/XMLSchema#boolean>`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// One line per triple.
	if n := strings.Count(strings.TrimSpace(out), "\n") + 1; n != 4 {
		t.Fatalf("%d lines:\n%s", n, out)
	}
}

func TestWriteNTriplesExpandsArrays(t *testing.T) {
	g := rdf.NewGraph()
	a, _ := array.FromInts([]int64{1, 2, 3, 4}, 2, 2)
	g.Add(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"), rdf.NewArray(a))
	var sb strings.Builder
	if err := WriteNTriples(&sb, g); err != nil {
		t.Fatal(err)
	}
	// The 2x2 matrix becomes the 13-triple list encoding.
	if n := strings.Count(sb.String(), " .\n"); n != 13 {
		t.Fatalf("%d triples:\n%s", n, sb.String())
	}
	// And the output reparses as Turtle (N-Triples is a subset).
	g2 := rdf.NewGraph()
	if err := ParseString(sb.String(), g2); err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if g2.Size() != 13 {
		t.Fatalf("reparsed %d triples", g2.Size())
	}
}

func TestWriteNTriplesRoundTrip(t *testing.T) {
	g := parse(t, foafDoc)
	var sb strings.Builder
	if err := WriteNTriples(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2 := rdf.NewGraph()
	if err := ParseString(sb.String(), g2); err != nil {
		t.Fatal(err)
	}
	if g2.Size() != g.Size() {
		t.Fatalf("%d vs %d triples", g2.Size(), g.Size())
	}
}

func TestWriteNTriplesDeterministic(t *testing.T) {
	g := parse(t, `@prefix ex: <http://ex/> . ex:b ex:p 2 . ex:a ex:p 1 .`)
	var s1, s2 strings.Builder
	WriteNTriples(&s1, g)
	WriteNTriples(&s2, g)
	if s1.String() != s2.String() {
		t.Fatal("output not deterministic")
	}
	if !strings.HasPrefix(s1.String(), "<http://ex/a>") {
		t.Fatalf("not sorted:\n%s", s1.String())
	}
}
