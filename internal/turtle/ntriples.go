package turtle

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"scisparql/internal/array"
	"scisparql/internal/rdf"
)

// WriteNTriples serializes a graph in the N-Triples line format: one
// fully expanded triple per line, deterministic order. Array terms are
// expanded into their rdf:first/rdf:rest list encoding (generating
// fresh blank nodes), so the output is plain standards-compliant
// N-Triples.
func WriteNTriples(w io.Writer, g *rdf.Graph) error {
	nw := &ntWriter{w: w}
	var lines []string
	g.Triples(func(s, p, o rdf.Term) bool {
		pi, ok := p.(rdf.IRI)
		if !ok {
			return true
		}
		lines = append(lines, nw.triple(s, pi, o)...)
		return true
	})
	if nw.err != nil {
		return nw.err
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

type ntWriter struct {
	w       io.Writer
	blankNo int
	err     error
}

func (nw *ntWriter) triple(s rdf.Term, p rdf.IRI, o rdf.Term) []string {
	if at, ok := o.(rdf.Array); ok {
		head, extra := nw.expandArray(at.A)
		line := fmt.Sprintf("%s %s %s .", nw.term(s), nw.term(p), head)
		return append([]string{line}, extra...)
	}
	return []string{fmt.Sprintf("%s %s %s .", nw.term(s), nw.term(p), nw.term(o))}
}

func (nw *ntWriter) fresh() string {
	nw.blankNo++
	return fmt.Sprintf("_:arr%d", nw.blankNo)
}

// expandArray emits the nested-list encoding of an array and returns
// the head node's rendering plus the generated triples.
func (nw *ntWriter) expandArray(a *array.Array) (string, []string) {
	var out []string
	var rec func(dim int, idx []int) string
	rec = func(dim int, idx []int) string {
		head := ""
		prev := ""
		for i := 0; i < a.Shape[dim]; i++ {
			idx[dim] = i
			cell := nw.fresh()
			if head == "" {
				head = cell
			}
			if prev != "" {
				out = append(out, fmt.Sprintf("%s <%s> %s .", prev, string(rdf.RDFRest), cell))
			}
			var valRepr string
			if dim == len(a.Shape)-1 {
				v, err := a.At(idx...)
				if err != nil {
					nw.err = err
					v = array.IntN(0)
				}
				if v.T == array.Int {
					valRepr = fmt.Sprintf("\"%d\"^^<%s>", v.I, string(rdf.XSDInteger))
				} else {
					valRepr = fmt.Sprintf("\"%s\"^^<%s>",
						strconv.FormatFloat(v.F, 'g', -1, 64), string(rdf.XSDDouble))
				}
			} else {
				valRepr = rec(dim+1, idx)
			}
			out = append(out, fmt.Sprintf("%s <%s> %s .", cell, string(rdf.RDFFirst), valRepr))
			prev = cell
		}
		out = append(out, fmt.Sprintf("%s <%s> <%s> .", prev, string(rdf.RDFRest), string(rdf.RDFNil)))
		return head
	}
	head := rec(0, make([]int, len(a.Shape)))
	return head, out
}

// term renders one term in N-Triples syntax. String literals and IRIs
// go through the shared Turtle escaping (ECHAR/UCHAR only), so control
// characters survive a write→parse round trip.
func (nw *ntWriter) term(t rdf.Term) string {
	switch v := t.(type) {
	case rdf.IRI:
		return "<" + EscapeIRI(string(v)) + ">"
	case rdf.Blank:
		return "_:" + string(v)
	case rdf.String:
		s := `"` + EscapeLiteral(v.Val) + `"`
		if v.Lang != "" {
			s += "@" + v.Lang
		}
		return s
	case rdf.Integer:
		return fmt.Sprintf("\"%d\"^^<%s>", int64(v), string(rdf.XSDInteger))
	case rdf.Float:
		return fmt.Sprintf("\"%s\"^^<%s>", strconv.FormatFloat(float64(v), 'g', -1, 64), string(rdf.XSDDouble))
	case rdf.Boolean:
		return fmt.Sprintf("\"%v\"^^<%s>", bool(v), string(rdf.XSDBoolean))
	case rdf.DateTime:
		return fmt.Sprintf("\"%s\"^^<%s>", v.T.Format("2006-01-02T15:04:05Z07:00"), string(rdf.XSDDateTime))
	case rdf.Typed:
		return `"` + EscapeLiteral(v.Lexical) + `"^^<` + EscapeIRI(string(v.Datatype)) + ">"
	default:
		nw.err = fmt.Errorf("turtle: cannot serialize %T as N-Triples", t)
		return "\"?\""
	}
}
