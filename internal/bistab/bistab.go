// Package bistab reproduces the BISTAB computational-biology
// application of dissertation §6.4: stochastic simulations of a
// bistable chemical system, whose parameter cases and realizations are
// described as RDF metadata while each realization's species
// trajectories are numeric arrays.
//
// The original data was produced by a stochastic simulator and stored
// in the Chelonia e-Science store (Figure 2: tasks with variables k_1,
// k_a, k_d, k_4, realization, result). We regenerate an equivalent
// dataset synthetically: per task a seeded random walk that flips
// between the two attractors of a bistable system, so that the §6.4.4
// queries exercise the same shapes — metadata-only selection, array
// slicing per matching task, filtering by array aggregates, and
// aggregation across realizations.
package bistab

import (
	"fmt"
	"math/rand"

	"scisparql/internal/array"
	"scisparql/internal/core"
	"scisparql/internal/rdf"
	"scisparql/internal/storage"
)

// NS is the namespace of the generated dataset.
const NS = "http://udbl.uu.se/bistab#"

// Config sizes the synthetic BISTAB dataset.
type Config struct {
	Cases        int // parameter cases (combinations of k_1..k_4)
	Realizations int // stochastic realizations per case
	Steps        int // time steps per trajectory
	ChunkBytes   int
	Seed         int64
}

// DefaultConfig is a laptop-scale instance of the §6.4.3 setup.
func DefaultConfig() Config {
	return Config{Cases: 8, Realizations: 4, Steps: 2048, ChunkBytes: 8 * 1024, Seed: 7}
}

// Tasks returns the number of generated tasks.
func (c Config) Tasks() int { return c.Cases * c.Realizations }

// Generate builds the BISTAB dataset in a fresh SSDM instance. With a
// non-nil backend the trajectory arrays are externalized.
func Generate(cfg Config, backend storage.Backend) (*core.SSDM, error) {
	db := core.Open()
	db.Opts.ChunkBytes = cfg.ChunkBytes
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := db.Dataset.Default

	taskNo := 0
	for c := 0; c < cfg.Cases; c++ {
		// Parameter case, in the ranges Figure 2 shows.
		k1 := 10 + rng.Float64()*40   // 10..50
		ka := 30 + rng.Float64()*60   // 30..90
		kd := 1e8 + rng.Float64()*9e8 // 1e8..1e9
		k4 := 40 + rng.Float64()*40   // 40..80
		caseIRI := rdf.IRI(fmt.Sprintf("%scase%d", NS, c+1))
		g.Add(caseIRI, rdf.RDFType, rdf.IRI(NS+"ParameterCase"))
		for r := 0; r < cfg.Realizations; r++ {
			taskNo++
			task := rdf.IRI(fmt.Sprintf("%stask%d", NS, taskNo))
			g.Add(task, rdf.RDFType, rdf.IRI(NS+"Task"))
			g.Add(task, rdf.IRI(NS+"case"), caseIRI)
			g.Add(task, rdf.IRI(NS+"k_1"), rdf.Float(k1))
			g.Add(task, rdf.IRI(NS+"k_a"), rdf.Float(ka))
			g.Add(task, rdf.IRI(NS+"k_d"), rdf.Float(kd))
			g.Add(task, rdf.IRI(NS+"k_4"), rdf.Float(k4))
			g.Add(task, rdf.IRI(NS+"realization"), rdf.Integer(int64(r+1)))
			traj := simulate(cfg.Steps, k1, k4, rng)
			g.Add(task, rdf.IRI(NS+"result"), rdf.NewArray(traj))
		}
	}
	if backend != nil {
		db.AttachBackend(backend)
		if _, err := db.Externalize(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// simulate produces a 2 x steps trajectory of species A and B counts:
// a noisy relaxation toward one of two attractors with occasional
// switches — the qualitative behaviour of the bistable system whose
// statistics the BISTAB study collected.
func simulate(steps int, k1, k4 float64, rng *rand.Rand) *array.Array {
	a := array.NewFloat(2, steps)
	loA, hiA := k1*2, k1*10 // two attractors for species A
	level := loA
	if rng.Intn(2) == 1 {
		level = hiA
	}
	x := level
	y := k4 * 3
	for t := 0; t < steps; t++ {
		// Occasional attractor switch.
		if rng.Float64() < 0.002 {
			if level == loA {
				level = hiA
			} else {
				level = loA
			}
		}
		x += 0.1*(level-x) + rng.NormFloat64()*k1*0.1
		if x < 0 {
			x = 0
		}
		y += 0.05*(k4*3-y) + rng.NormFloat64()*k4*0.05
		if y < 0 {
			y = 0
		}
		a.Base.F[t] = x
		a.Base.F[steps+t] = y
	}
	return a
}

// The application queries of §6.4.4, parameterized by thresholds.

// Q1 selects tasks by metadata only: parameter filter over k_1.
func Q1(k1Min float64) string {
	return fmt.Sprintf(`PREFIX bi: <%s>
SELECT ?task ?k WHERE { ?task a bi:Task ; bi:k_1 ?k FILTER (?k >= %g) }`, NS, k1Min)
}

// Q2 retrieves the head of species A's trajectory for tasks matching a
// metadata filter — array access driven by metadata selection.
func Q2(k1Min float64, head int) string {
	return fmt.Sprintf(`PREFIX bi: <%s>
SELECT ?task (?r[1,1:%d] AS ?head) WHERE {
  ?task a bi:Task ; bi:k_1 ?k ; bi:result ?r FILTER (?k >= %g)
}`, NS, head, k1Min)
}

// Q3 filters tasks by a computation over the whole array: realizations
// whose species-A peak exceeds a threshold.
func Q3(peakMin float64) string {
	return fmt.Sprintf(`PREFIX bi: <%s>
SELECT ?task (amax(?r[1,:]) AS ?peak) WHERE {
  ?task a bi:Task ; bi:result ?r FILTER (amax(?r[1,:]) >= %g)
}`, NS, peakMin)
}

// Q4 aggregates across realizations: the mean species-A peak per
// parameter case.
func Q4() string {
	return fmt.Sprintf(`PREFIX bi: <%s>
SELECT ?case (AVG(amax(?r[1,:])) AS ?avgPeak) (COUNT(*) AS ?n) WHERE {
  ?task a bi:Task ; bi:case ?case ; bi:result ?r
} GROUP BY ?case ORDER BY ?case`, NS)
}

// Queries returns the named application queries with default
// parameters, in report order.
func Queries(cfg Config) []struct{ Name, Text string } {
	return []struct{ Name, Text string }{
		{"Q1", Q1(30)},
		{"Q2", Q2(30, 100)},
		{"Q3", Q3(100)},
		{"Q4", Q4()},
	}
}
