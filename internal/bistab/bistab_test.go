package bistab

import (
	"testing"

	"scisparql/internal/rdf"
	"scisparql/internal/storage"
)

func tinyConfig() Config {
	return Config{Cases: 3, Realizations: 2, Steps: 128, ChunkBytes: 256, Seed: 7}
}

func TestGenerateShape(t *testing.T) {
	cfg := tinyConfig()
	db, err := Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Per task: type, case, 4 params, realization, result = 8 triples;
	// plus one type triple per case.
	want := cfg.Tasks()*8 + cfg.Cases
	if db.Dataset.Default.Size() != want {
		t.Fatalf("size %d, want %d", db.Dataset.Default.Size(), want)
	}
}

func TestQ1MetadataOnly(t *testing.T) {
	db, err := Generate(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(Q1(0)) // threshold 0: every task matches
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != tinyConfig().Tasks() {
		t.Fatalf("rows %d, want %d", res.Len(), tinyConfig().Tasks())
	}
}

func TestQ2SliceRetrieval(t *testing.T) {
	db, err := Generate(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(Q2(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("no rows")
	}
	head, ok := res.Get(0, "head").(rdf.Array)
	if !ok || head.A.Count() != 10 {
		t.Fatalf("%v", res.Rows[0])
	}
}

func TestQ3ArrayFilter(t *testing.T) {
	db, err := Generate(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	all, err := db.Query(Q3(0))
	if err != nil {
		t.Fatal(err)
	}
	some, err := db.Query(Q3(1e9))
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != tinyConfig().Tasks() {
		t.Fatalf("all %d", all.Len())
	}
	if some.Len() != 0 {
		t.Fatalf("impossible threshold matched %d", some.Len())
	}
}

func TestQ4GroupsPerCase(t *testing.T) {
	cfg := tinyConfig()
	db, err := Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(Q4())
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != cfg.Cases {
		t.Fatalf("groups %d, want %d", res.Len(), cfg.Cases)
	}
	if res.Get(0, "n") != rdf.Integer(int64(cfg.Realizations)) {
		t.Fatalf("%v", res.Rows[0])
	}
}

func TestExternalizedMatchesResident(t *testing.T) {
	cfg := tinyConfig()
	dbRes, err := Generate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	dbExt, err := Generate(cfg, storage.NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Queries(cfg) {
		r1, err := dbRes.Query(q.Text)
		if err != nil {
			t.Fatalf("%s resident: %v", q.Name, err)
		}
		r2, err := dbExt.Query(q.Text)
		if err != nil {
			t.Fatalf("%s external: %v", q.Name, err)
		}
		if r1.Len() != r2.Len() {
			t.Fatalf("%s: %d vs %d rows", q.Name, r1.Len(), r2.Len())
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	cfg := tinyConfig()
	db1, _ := Generate(cfg, nil)
	db2, _ := Generate(cfg, nil)
	q := Q4()
	r1, err := db1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Rows {
		if r1.Rows[i][1] != r2.Rows[i][1] {
			t.Fatalf("row %d differs: %v vs %v", i, r1.Rows[i], r2.Rows[i])
		}
	}
}
