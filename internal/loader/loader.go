// Package loader implements SSDM's data loaders (dissertation §5.3):
// consolidation of nested RDF collections into resident numeric
// arrays, consolidation of RDF Data Cube datasets, and resolution of
// file links to proxied arrays in external storage.
//
// Consolidation rewrites the graph in place: the 13-triple encoding of
// a 2x2 matrix (§2.3.5.1) collapses to a single triple whose value is
// an array term, drastically shrinking the graph and making the data
// available to SciSPARQL's array operations.
package loader

import (
	"fmt"
	"sort"
	"strconv"

	"scisparql/internal/array"
	"scisparql/internal/rdf"
	"scisparql/internal/storage"
)

// triple is a collected (s,p,o) for deferred deletion.
type triple struct{ s, p, o rdf.Term }

// ConsolidateCollections finds triples whose object is the head of a
// well-formed nested numeric RDF collection, replaces the object with
// a consolidated array term and removes the list-cell triples
// (§5.3.2). It returns the number of arrays consolidated.
func ConsolidateCollections(g *rdf.Graph) (int, error) {
	// Gather candidate (s,p,head) triples: object has rdf:first and the
	// predicate is not itself a list predicate.
	var candidates []triple
	g.Triples(func(s, p, o rdf.Term) bool {
		if p == rdf.RDFFirst || p == rdf.RDFRest {
			return true
		}
		if hasFirst(g, o) {
			candidates = append(candidates, triple{s, p, o})
		}
		return true
	})
	consolidated := 0
	for _, cand := range candidates {
		arr, cells, ok := parseNumericList(g, cand.o)
		if !ok {
			continue
		}
		pi, isIRI := cand.p.(rdf.IRI)
		if !isIRI {
			continue
		}
		g.Delete(cand.s, pi, cand.o)
		g.Add(cand.s, pi, rdf.NewArray(arr))
		for _, c := range cells {
			g.Delete(c.s, c.p, c.o)
		}
		consolidated++
	}
	return consolidated, nil
}

func hasFirst(g *rdf.Graph, node rdf.Term) bool {
	found := false
	g.MatchTerms(node, rdf.RDFFirst, nil, func(_, _, _ rdf.Term) bool {
		found = true
		return false
	})
	return found
}

// listShape is the recursive value of a parsed collection: either a
// scalar or a nested slice.
type listVal struct {
	scalar *array.Number
	sub    []listVal
}

// parseNumericList walks an rdf:first/rdf:rest chain (recursively for
// nested lists) and, if every leaf is numeric and the nesting is
// rectangular, produces the consolidated array plus the cell triples
// to delete.
func parseNumericList(g *rdf.Graph, head rdf.Term) (*array.Array, []triple, bool) {
	val, cells, ok := parseListVal(g, head, 0)
	if !ok || val.sub == nil {
		return nil, nil, false
	}
	shape, ok := shapeOf(listVal{sub: val.sub})
	if !ok || len(shape) == 0 {
		return nil, nil, false
	}
	allInt := true
	var flat []array.Number
	var flatten func(v listVal) bool
	flatten = func(v listVal) bool {
		if v.scalar != nil {
			if v.scalar.T != array.Int {
				allInt = false
			}
			flat = append(flat, *v.scalar)
			return true
		}
		for _, s := range v.sub {
			if !flatten(s) {
				return false
			}
		}
		return true
	}
	if !flatten(listVal{sub: val.sub}) {
		return nil, nil, false
	}
	var arr *array.Array
	var err error
	if allInt {
		data := make([]int64, len(flat))
		for i, n := range flat {
			data[i] = n.I
		}
		arr, err = array.FromInts(data, shape...)
	} else {
		data := make([]float64, len(flat))
		for i, n := range flat {
			data[i] = n.Float()
		}
		arr, err = array.FromFloats(data, shape...)
	}
	if err != nil {
		return nil, nil, false
	}
	return arr, cells, true
}

const maxListDepth = 16

func parseListVal(g *rdf.Graph, node rdf.Term, depth int) (listVal, []triple, bool) {
	if depth > maxListDepth {
		return listVal{}, nil, false
	}
	var items []listVal
	var cells []triple
	cur := node
	for {
		if cur == rdf.RDFNil {
			break
		}
		var first rdf.Term
		nFirst := 0
		g.MatchTerms(cur, rdf.RDFFirst, nil, func(_, _, o rdf.Term) bool {
			first = o
			nFirst++
			return true
		})
		var rest rdf.Term
		nRest := 0
		g.MatchTerms(cur, rdf.RDFRest, nil, func(_, _, o rdf.Term) bool {
			rest = o
			nRest++
			return true
		})
		if nFirst != 1 || nRest != 1 {
			return listVal{}, nil, false
		}
		cells = append(cells, triple{cur, rdf.RDFFirst, first}, triple{cur, rdf.RDFRest, rest})

		if n, ok := rdf.Numeric(first); ok {
			if _, isBool := first.(rdf.Boolean); isBool {
				return listVal{}, nil, false
			}
			items = append(items, listVal{scalar: &n})
		} else if hasFirst(g, first) {
			sub, subCells, ok := parseListVal(g, first, depth+1)
			if !ok {
				return listVal{}, nil, false
			}
			items = append(items, listVal{sub: sub.sub})
			cells = append(cells, subCells...)
		} else {
			return listVal{}, nil, false
		}
		cur = rest
	}
	if len(items) == 0 {
		return listVal{}, nil, false
	}
	return listVal{sub: items}, cells, true
}

// shapeOf checks rectangularity and returns the nested shape.
func shapeOf(v listVal) ([]int, bool) {
	if v.scalar != nil {
		return nil, true
	}
	n := len(v.sub)
	first, ok := shapeOf(v.sub[0])
	if !ok {
		return nil, false
	}
	for _, s := range v.sub[1:] {
		sh, ok := shapeOf(s)
		if !ok || !array.ShapeEqual(sh, first) {
			return nil, false
		}
	}
	return append([]int{n}, first...), true
}

// --- file links (§5.3.1) ---

// ResolveFileLinks replaces typed literals "N"^^ssdm:fileLink (N being
// an array ID in the given back-end) with proxied array terms, so that
// externally stored arrays join the graph without their data being
// read (the mediator scenario of chapter 6). It returns the number of
// links resolved.
func ResolveFileLinks(g *rdf.Graph, backend storage.Backend) (int, error) {
	var links []triple
	g.Triples(func(s, p, o rdf.Term) bool {
		if t, ok := o.(rdf.Typed); ok && t.Datatype == rdf.SSDMFileLink {
			links = append(links, triple{s, p, o})
		}
		return true
	})
	resolved := 0
	for _, l := range links {
		lex := l.o.(rdf.Typed).Lexical
		id, err := strconv.ParseInt(lex, 10, 64)
		if err != nil {
			return resolved, fmt.Errorf("loader: bad file link %q", lex)
		}
		a, err := backend.Open(id)
		if err != nil {
			return resolved, fmt.Errorf("loader: file link %q: %w", lex, err)
		}
		pi := l.p.(rdf.IRI)
		g.Delete(l.s, pi, l.o)
		g.Add(l.s, pi, rdf.NewArray(a))
		resolved++
	}
	return resolved, nil
}

// LinkArray attaches an externally stored array to the graph as a
// proxied value of (s, p).
func LinkArray(g *rdf.Graph, s rdf.Term, p rdf.IRI, backend storage.Backend, id int64) error {
	a, err := backend.Open(id)
	if err != nil {
		return err
	}
	g.Add(s, p, rdf.NewArray(a))
	return nil
}

// --- externalization (the back-end scenario of chapter 6) ---

// ExternalizeArrays moves every resident array value in the graph to
// the given storage back-end, replacing the terms with proxied views.
// It returns the number of arrays moved.
func ExternalizeArrays(g *rdf.Graph, backend storage.Backend, chunkElems int) (int, error) {
	var victims []triple
	g.Triples(func(s, p, o rdf.Term) bool {
		if at, ok := o.(rdf.Array); ok && at.A.Base.Resident() {
			victims = append(victims, triple{s, p, o})
		}
		return true
	})
	moved := 0
	for _, v := range victims {
		at := v.o.(rdf.Array)
		id, err := backend.Store(at.A, chunkElems)
		if err != nil {
			return moved, err
		}
		proxied, err := backend.Open(id)
		if err != nil {
			return moved, err
		}
		pi := v.p.(rdf.IRI)
		g.Delete(v.s, pi, v.o)
		g.Add(v.s, pi, rdf.NewArray(proxied))
		moved++
	}
	return moved, nil
}

// DropProxyCaches discards the chunk caches of every proxied array in
// the graph, so that benchmark iterations measure cold reads.
func DropProxyCaches(g *rdf.Graph) int {
	n := 0
	g.Triples(func(_, _, o rdf.Term) bool {
		if at, ok := o.(rdf.Array); ok && at.A.Base.Proxy != nil {
			at.A.Base.Proxy.DropCache()
			n++
		}
		return true
	})
	return n
}

// --- RDF Data Cube consolidation (§5.3.3) ---

// ConsolidateDataCube consolidates every qb:DataSet in the graph: the
// observations are replaced by one dense array per measure attached
// directly to the dataset node, plus per-dimension index dictionaries:
//
//	?ds <measureIRI>  [array]            (one per measure)
//	?ds ssdm:dimension [ qb:dimension <dimIRI> ;
//	                     qb:order N ;
//	                     ssdm:index [dictionary array or collection] ]
//
// It returns the number of datasets consolidated.
func ConsolidateDataCube(g *rdf.Graph) (int, error) {
	datasets := map[string]rdf.Term{}
	g.MatchTerms(nil, rdf.QBDataSetProp, nil, func(_, _, ds rdf.Term) bool {
		datasets[ds.Key()] = ds
		return true
	})
	n := 0
	for _, ds := range datasets {
		ok, err := consolidateOneCube(g, ds)
		if err != nil {
			return n, err
		}
		if ok {
			n++
		}
	}
	return n, nil
}

func consolidateOneCube(g *rdf.Graph, ds rdf.Term) (bool, error) {
	dims, measures := cubeStructure(g, ds)
	if len(dims) == 0 || len(measures) == 0 {
		return false, nil
	}
	// Collect observations.
	var obs []rdf.Term
	g.MatchTerms(nil, rdf.QBDataSetProp, ds, func(o, _, _ rdf.Term) bool {
		obs = append(obs, o)
		return true
	})
	if len(obs) == 0 {
		return false, nil
	}
	// Dimension dictionaries: distinct values per dimension, sorted by
	// key for determinism (numeric dimensions sort numerically).
	dicts := make([][]rdf.Term, len(dims))
	index := make([]map[string]int, len(dims))
	for d, dimIRI := range dims {
		seen := map[string]rdf.Term{}
		for _, o := range obs {
			g.MatchTerms(o, dimIRI, nil, func(_, _, v rdf.Term) bool {
				seen[v.Key()] = v
				return true
			})
		}
		vals := make([]rdf.Term, 0, len(seen))
		for _, v := range seen {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool {
			ni, iok := rdf.Numeric(vals[i])
			nj, jok := rdf.Numeric(vals[j])
			if iok && jok {
				return ni.Float() < nj.Float()
			}
			return vals[i].Key() < vals[j].Key()
		})
		dicts[d] = vals
		index[d] = map[string]int{}
		for i, v := range vals {
			index[d][v.Key()] = i
		}
	}
	shape := make([]int, len(dims))
	for d := range dims {
		shape[d] = len(dicts[d])
		if shape[d] == 0 {
			return false, nil
		}
	}
	// One dense float array per measure.
	arrays := make([]*array.Array, len(measures))
	for m := range measures {
		arrays[m] = array.NewFloat(shape...)
	}
	for _, o := range obs {
		idx := make([]int, len(dims))
		ok := true
		for d, dimIRI := range dims {
			found := false
			g.MatchTerms(o, dimIRI, nil, func(_, _, v rdf.Term) bool {
				if i, has := index[d][v.Key()]; has {
					idx[d] = i
					found = true
				}
				return false
			})
			if !found {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for m, measIRI := range measures {
			g.MatchTerms(o, measIRI, nil, func(_, _, v rdf.Term) bool {
				if num, isNum := rdf.Numeric(v); isNum {
					arrays[m].SetAt(num, idx...)
				}
				return false
			})
		}
	}
	// Remove observation triples.
	for _, o := range obs {
		var cell []triple
		g.MatchTerms(o, nil, nil, func(s, p, v rdf.Term) bool {
			cell = append(cell, triple{s, p, v})
			return true
		})
		for _, c := range cell {
			g.Delete(c.s, c.p.(rdf.IRI), c.o)
		}
	}
	// Attach consolidated arrays and dimension dictionaries.
	for m, measIRI := range measures {
		g.Add(ds, measIRI, rdf.NewArray(arrays[m]))
	}
	for d, dimIRI := range dims {
		bn := g.NewBlank()
		g.Add(ds, rdf.SSDMDimension, bn)
		g.Add(bn, rdf.QBDimensionProp, dimIRI)
		g.Add(bn, rdf.QBOrderProp, rdf.Integer(int64(d+1)))
		if dict, ok := numericDict(dicts[d]); ok {
			g.Add(bn, rdf.SSDMIndex, rdf.NewArray(dict))
		} else {
			// Non-numeric dictionary: keep the values as an ordered RDF
			// collection.
			head := buildCollection(g, dicts[d])
			g.Add(bn, rdf.SSDMIndex, head)
		}
	}
	return true, nil
}

// cubeStructure finds the dimension and measure properties of a
// dataset through qb:structure/qb:component, ordered by qb:order when
// present.
func cubeStructure(g *rdf.Graph, ds rdf.Term) (dims, measures []rdf.IRI) {
	type comp struct {
		iri   rdf.IRI
		order int
		isDim bool
	}
	var comps []comp
	g.MatchTerms(ds, rdf.QBStructure, nil, func(_, _, dsd rdf.Term) bool {
		g.MatchTerms(dsd, rdf.QBComponent, nil, func(_, _, c rdf.Term) bool {
			entry := comp{order: 1 << 20}
			g.MatchTerms(c, rdf.QBDimensionProp, nil, func(_, _, p rdf.Term) bool {
				if iri, ok := p.(rdf.IRI); ok {
					entry.iri, entry.isDim = iri, true
				}
				return false
			})
			if entry.iri == "" {
				g.MatchTerms(c, rdf.QBMeasureProp, nil, func(_, _, p rdf.Term) bool {
					if iri, ok := p.(rdf.IRI); ok {
						entry.iri = iri
					}
					return false
				})
			}
			g.MatchTerms(c, rdf.QBOrderProp, nil, func(_, _, v rdf.Term) bool {
				if n, ok := rdf.Numeric(v); ok {
					entry.order = int(n.Intval())
				}
				return false
			})
			if entry.iri != "" {
				comps = append(comps, entry)
			}
			return true
		})
		return true
	})
	sort.SliceStable(comps, func(i, j int) bool { return comps[i].order < comps[j].order })
	for _, c := range comps {
		if c.isDim {
			dims = append(dims, c.iri)
		} else {
			measures = append(measures, c.iri)
		}
	}
	return dims, measures
}

func numericDict(vals []rdf.Term) (*array.Array, bool) {
	nums := make([]array.Number, len(vals))
	for i, v := range vals {
		n, ok := rdf.Numeric(v)
		if !ok {
			return nil, false
		}
		nums[i] = n
	}
	a, err := array.Vector(nums...)
	if err != nil {
		return nil, false
	}
	return a, true
}

func buildCollection(g *rdf.Graph, vals []rdf.Term) rdf.Term {
	if len(vals) == 0 {
		return rdf.RDFNil
	}
	head := rdf.Term(g.NewBlank())
	cur := head
	for i, v := range vals {
		g.Add(cur, rdf.RDFFirst, v)
		if i == len(vals)-1 {
			g.Add(cur, rdf.RDFRest, rdf.RDFNil)
		} else {
			next := g.NewBlank()
			g.Add(cur, rdf.RDFRest, next)
			cur = next
		}
	}
	return head
}
