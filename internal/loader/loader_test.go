package loader

import (
	"testing"

	"scisparql/internal/array"
	"scisparql/internal/rdf"
	"scisparql/internal/storage"
	"scisparql/internal/turtle"
)

func parseTTL(t *testing.T, src string) *rdf.Graph {
	t.Helper()
	g := rdf.NewGraph()
	if err := turtle.ParseString(src, g); err != nil {
		t.Fatal(err)
	}
	return g
}

func arrayOf(t *testing.T, g *rdf.Graph, s, p rdf.Term) *array.Array {
	t.Helper()
	var out *array.Array
	g.MatchTerms(s, p, nil, func(_, _, o rdf.Term) bool {
		if at, ok := o.(rdf.Array); ok {
			out = at.A
		}
		return true
	})
	if out == nil {
		t.Fatalf("no array at %v %v", s, p)
	}
	return out
}

func TestConsolidateNestedCollection(t *testing.T) {
	g := parseTTL(t, `@prefix ex: <http://ex/> . ex:s ex:p ((1 2) (3 4)) .`)
	if g.Size() != 13 {
		t.Fatalf("pre size %d", g.Size())
	}
	n, err := ConsolidateCollections(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("consolidated %d", n)
	}
	// 13 triples collapse to 1.
	if g.Size() != 1 {
		t.Fatalf("post size %d", g.Size())
	}
	a := arrayOf(t, g, rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"))
	if !array.ShapeEqual(a.Shape, []int{2, 2}) || a.Etype() != array.Int {
		t.Fatalf("shape %v etype %v", a.Shape, a.Etype())
	}
	v, _ := a.At(1, 0)
	if v.I != 3 {
		t.Fatalf("a[1,0] = %v", v)
	}
}

func TestConsolidateFlatFloatCollection(t *testing.T) {
	g := parseTTL(t, `@prefix ex: <http://ex/> . ex:s ex:p (1.5 2.5 3.5) .`)
	if _, err := ConsolidateCollections(g); err != nil {
		t.Fatal(err)
	}
	a := arrayOf(t, g, rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"))
	if a.Etype() != array.Float || a.Count() != 3 {
		t.Fatalf("%v %d", a.Etype(), a.Count())
	}
}

func TestNonNumericCollectionLeftAlone(t *testing.T) {
	g := parseTTL(t, `@prefix ex: <http://ex/> . ex:s ex:p (1 "two" 3) .`)
	pre := g.Size()
	n, err := ConsolidateCollections(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || g.Size() != pre {
		t.Fatalf("should not consolidate: n=%d size %d->%d", n, pre, g.Size())
	}
}

func TestRaggedCollectionLeftAlone(t *testing.T) {
	g := parseTTL(t, `@prefix ex: <http://ex/> . ex:s ex:p ((1 2) (3)) .`)
	n, err := ConsolidateCollections(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("ragged list must not consolidate")
	}
}

func TestMixedIntFloatBecomesFloat(t *testing.T) {
	g := parseTTL(t, `@prefix ex: <http://ex/> . ex:s ex:p (1 2.5) .`)
	if _, err := ConsolidateCollections(g); err != nil {
		t.Fatal(err)
	}
	a := arrayOf(t, g, rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"))
	if a.Etype() != array.Float {
		t.Fatalf("etype %v", a.Etype())
	}
}

func TestMultipleCollections(t *testing.T) {
	g := parseTTL(t, `@prefix ex: <http://ex/> .
ex:a ex:p (1 2) . ex:b ex:p (3 4 5) .`)
	n, err := ConsolidateCollections(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || g.Size() != 2 {
		t.Fatalf("n=%d size=%d", n, g.Size())
	}
}

func TestFileLinks(t *testing.T) {
	mem := storage.NewMemory()
	src, _ := array.FromFloats([]float64{1, 2, 3, 4}, 4)
	id, err := mem.Store(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := rdf.NewGraph()
	g.Add(rdf.IRI("http://ex/s"), rdf.IRI("http://ex/data"),
		rdf.Typed{Lexical: "1", Datatype: rdf.SSDMFileLink})
	_ = id
	n, err := ResolveFileLinks(g, mem)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("resolved %d", n)
	}
	a := arrayOf(t, g, rdf.IRI("http://ex/s"), rdf.IRI("http://ex/data"))
	if a.Base.Resident() {
		t.Fatal("file-linked array should be proxied")
	}
	v, err := a.At(2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 3 {
		t.Fatalf("got %v", v)
	}
}

func TestFileLinkErrors(t *testing.T) {
	mem := storage.NewMemory()
	g := rdf.NewGraph()
	g.Add(rdf.IRI("s"), rdf.IRI("p"), rdf.Typed{Lexical: "notanum", Datatype: rdf.SSDMFileLink})
	if _, err := ResolveFileLinks(g, mem); err == nil {
		t.Fatal("bad lexical should fail")
	}
	g2 := rdf.NewGraph()
	g2.Add(rdf.IRI("s"), rdf.IRI("p"), rdf.Typed{Lexical: "99", Datatype: rdf.SSDMFileLink})
	if _, err := ResolveFileLinks(g2, mem); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestLinkArray(t *testing.T) {
	mem := storage.NewMemory()
	src, _ := array.FromInts([]int64{7, 8}, 2)
	id, _ := mem.Store(src, 2)
	g := rdf.NewGraph()
	if err := LinkArray(g, rdf.IRI("s"), rdf.IRI("p"), mem, id); err != nil {
		t.Fatal(err)
	}
	a := arrayOf(t, g, rdf.IRI("s"), rdf.IRI("p"))
	v, _ := a.At(1)
	if v.Intval() != 8 {
		t.Fatalf("got %v", v)
	}
}

func TestExternalizeArrays(t *testing.T) {
	g := parseTTL(t, `@prefix ex: <http://ex/> . ex:s ex:p ((1 2) (3 4)) .`)
	if _, err := ConsolidateCollections(g); err != nil {
		t.Fatal(err)
	}
	mem := storage.NewMemory()
	n, err := ExternalizeArrays(g, mem, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("moved %d", n)
	}
	a := arrayOf(t, g, rdf.IRI("http://ex/s"), rdf.IRI("http://ex/p"))
	if a.Base.Resident() {
		t.Fatal("array should now be proxied")
	}
	v, err := a.At(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Float() != 4 {
		t.Fatalf("got %v", v)
	}
}

const cubeTTL = `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix ex: <http://ex/> .

ex:dsd a qb:DataStructureDefinition ;
  qb:component [ qb:dimension ex:year ; qb:order 1 ] ,
               [ qb:dimension ex:region ; qb:order 2 ] ,
               [ qb:measure ex:population ] .

ex:ds a qb:DataSet ; qb:structure ex:dsd .

ex:o1 qb:dataSet ex:ds ; ex:year 2010 ; ex:region "north" ; ex:population 100 .
ex:o2 qb:dataSet ex:ds ; ex:year 2010 ; ex:region "south" ; ex:population 200 .
ex:o3 qb:dataSet ex:ds ; ex:year 2011 ; ex:region "north" ; ex:population 110 .
ex:o4 qb:dataSet ex:ds ; ex:year 2011 ; ex:region "south" ; ex:population 210 .
`

func TestConsolidateDataCube(t *testing.T) {
	g := parseTTL(t, cubeTTL)
	pre := g.Size()
	n, err := ConsolidateDataCube(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("consolidated %d datasets", n)
	}
	if g.Size() >= pre {
		t.Fatalf("graph should shrink: %d -> %d", pre, g.Size())
	}
	ds := rdf.IRI("http://ex/ds")
	a := arrayOf(t, g, ds, rdf.IRI("http://ex/population"))
	if !array.ShapeEqual(a.Shape, []int{2, 2}) {
		t.Fatalf("shape %v", a.Shape)
	}
	// year dim sorted ascending (2010, 2011); region sorted ("north" < "south").
	v, _ := a.At(1, 1) // 2011 south
	if v.Float() != 210 {
		t.Fatalf("got %v", v)
	}
	// Dimension metadata present.
	dims := 0
	g.MatchTerms(ds, rdf.SSDMDimension, nil, func(_, _, _ rdf.Term) bool {
		dims++
		return true
	})
	if dims != 2 {
		t.Fatalf("dims %d", dims)
	}
}

func TestDataCubeNumericDictionary(t *testing.T) {
	g := parseTTL(t, cubeTTL)
	if _, err := ConsolidateDataCube(g); err != nil {
		t.Fatal(err)
	}
	// The year dimension should carry a numeric index array [2010 2011].
	found := false
	g.MatchTerms(nil, rdf.QBDimensionProp, rdf.IRI("http://ex/year"), func(bn, _, _ rdf.Term) bool {
		g.MatchTerms(bn, rdf.SSDMIndex, nil, func(_, _, idx rdf.Term) bool {
			if at, ok := idx.(rdf.Array); ok {
				v, _ := at.A.At(0)
				if v.Intval() == 2010 {
					found = true
				}
			}
			return true
		})
		return true
	})
	if !found {
		t.Fatal("numeric dimension dictionary missing")
	}
}

func TestDataCubeWithoutStructureIgnored(t *testing.T) {
	g := parseTTL(t, `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix ex: <http://ex/> .
ex:o1 qb:dataSet ex:ds ; ex:x 1 .
`)
	n, err := ConsolidateDataCube(g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatal("dataset without structure must be ignored")
	}
}
