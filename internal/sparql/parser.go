package sparql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"scisparql/internal/rdf"
)

// Parser is a recursive-descent parser for SciSPARQL queries and
// updates. It follows the SPARQL 1.1 grammar for the standard subset
// (an SLR-style grammar is used in SSDM, §5.4.1; recursive descent
// recognizes the same language) with the SciSPARQL additions of
// chapter 4.
type Parser struct {
	lex      *sLexer
	tok      tok
	prefixes map[string]string
	base     string
	blankNo  int
	varNo    int
}

// ParseQuery parses a single SELECT/ASK/CONSTRUCT/DESCRIBE query.
func ParseQuery(src string) (*Query, error) {
	st, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	q, ok := st.(*Query)
	if !ok {
		return nil, fmt.Errorf("sciSPARQL: not a query")
	}
	return q, nil
}

// ParseStatement parses one query or update statement.
func ParseStatement(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sciSPARQL: expected a single statement, found %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a sequence of statements separated by ';'.
func ParseAll(src string) ([]Statement, error) {
	p := &Parser{lex: newSLexer(src), prefixes: map[string]string{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []Statement
	for p.tok.kind != tEOF {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if p.tok.isPunct(";") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sciSPARQL: empty request")
	}
	return out, nil
}

func (p *Parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sciSPARQL: line %d col %d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *Parser) expectPunct(s string) error {
	if !p.tok.isPunct(s) {
		return p.errorf("expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

func (p *Parser) expectWord(kw string) error {
	if !p.tok.isWord(kw) {
		return p.errorf("expected %s, found %s", kw, p.tok)
	}
	return p.advance()
}

func (p *Parser) acceptWord(kw string) bool {
	if p.tok.isWord(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) freshBlank() rdf.Blank {
	p.blankNo++
	return rdf.Blank(fmt.Sprintf("q%d", p.blankNo))
}

// statement parses prologue plus one query or update.
func (p *Parser) statement() (Statement, error) {
	if err := p.prologue(); err != nil {
		return nil, err
	}
	switch {
	case p.tok.isWord("SELECT"), p.tok.isWord("ASK"), p.tok.isWord("CONSTRUCT"), p.tok.isWord("DESCRIBE"):
		return p.query()
	case p.tok.isWord("INSERT"):
		return p.insertStmt()
	case p.tok.isWord("DELETE"):
		return p.deleteStmt()
	case p.tok.isWord("WITH"):
		return p.withModify()
	case p.tok.isWord("LOAD"):
		return p.loadStmt()
	case p.tok.isWord("CLEAR"):
		return p.clearStmt()
	case p.tok.isWord("DEFINE"):
		return p.defineStmt()
	default:
		return nil, p.errorf("expected a query or update, found %s", p.tok)
	}
}

func (p *Parser) prologue() error {
	for {
		switch {
		case p.tok.isWord("PREFIX"):
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tPName || !strings.HasSuffix(p.tok.text, ":") {
				return p.errorf("expected prefix name, found %s", p.tok)
			}
			name := strings.TrimSuffix(p.tok.text, ":")
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tIRI {
				return p.errorf("expected namespace IRI, found %s", p.tok)
			}
			p.prefixes[name] = p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
		case p.tok.isWord("BASE"):
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tIRI {
				return p.errorf("expected base IRI, found %s", p.tok)
			}
			p.base = p.tok.text
			if err := p.advance(); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

func (p *Parser) snapshotPrefixes() map[string]string {
	out := make(map[string]string, len(p.prefixes))
	for k, v := range p.prefixes {
		out[k] = v
	}
	return out
}

func (p *Parser) expandPName(pname string) (rdf.IRI, error) {
	i := strings.Index(pname, ":")
	if i < 0 {
		return "", p.errorf("malformed prefixed name %q", pname)
	}
	ns, ok := p.prefixes[pname[:i]]
	if !ok {
		return "", p.errorf("undefined prefix %q", pname[:i])
	}
	return rdf.IRI(ns + pname[i+1:]), nil
}

func (p *Parser) resolveIRI(s string) rdf.IRI {
	if p.base != "" && !strings.Contains(s, ":") {
		return rdf.IRI(p.base + s)
	}
	return rdf.IRI(s)
}

// --- queries ---

func (p *Parser) query() (*Query, error) {
	q := &Query{Prefixes: p.snapshotPrefixes(), Base: p.base, Limit: -1}
	switch {
	case p.acceptWord("SELECT"):
		q.Form = FormSelect
		if p.acceptWord("DISTINCT") {
			q.Distinct = true
		} else if p.acceptWord("REDUCED") {
			q.Reduced = true
		}
		if p.tok.isPunct("*") {
			q.Star = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else {
			for {
				switch {
				case p.tok.kind == tVar:
					q.Items = append(q.Items, SelectItem{Var: p.tok.text})
					if err := p.advance(); err != nil {
						return nil, err
					}
				case p.tok.isPunct("("):
					if err := p.advance(); err != nil {
						return nil, err
					}
					e, err := p.expression()
					if err != nil {
						return nil, err
					}
					if err := p.expectWord("AS"); err != nil {
						return nil, err
					}
					if p.tok.kind != tVar {
						return nil, p.errorf("expected variable after AS, found %s", p.tok)
					}
					name := p.tok.text
					if err := p.advance(); err != nil {
						return nil, err
					}
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
					q.Items = append(q.Items, SelectItem{Var: name, Expr: e})
				default:
					if len(q.Items) == 0 {
						return nil, p.errorf("expected projection, found %s", p.tok)
					}
					goto doneSelect
				}
			}
		doneSelect:
		}
	case p.acceptWord("ASK"):
		q.Form = FormAsk
	case p.acceptWord("CONSTRUCT"):
		q.Form = FormConstruct
		tpl, err := p.templateBlock()
		if err != nil {
			return nil, err
		}
		q.ConstructTemplate = tpl
	case p.acceptWord("DESCRIBE"):
		q.Form = FormDescribe
		for {
			switch p.tok.kind {
			case tVar:
				q.DescribeTerms = append(q.DescribeTerms, EVar{Name: p.tok.text})
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			case tIRI:
				q.DescribeTerms = append(q.DescribeTerms, ELit{Term: p.resolveIRI(p.tok.text)})
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			case tPName:
				iri, err := p.expandPName(p.tok.text)
				if err != nil {
					return nil, err
				}
				q.DescribeTerms = append(q.DescribeTerms, ELit{Term: iri})
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if len(q.DescribeTerms) == 0 {
			return nil, p.errorf("DESCRIBE needs at least one resource")
		}
	}

	for {
		switch {
		case p.tok.isWord("FROM"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			named := p.acceptWord("NAMED")
			iri, err := p.iriRef()
			if err != nil {
				return nil, err
			}
			if named {
				q.FromNamed = append(q.FromNamed, iri)
			} else {
				q.From = append(q.From, iri)
			}
			continue
		}
		break
	}

	needWhere := q.Form != FormDescribe
	if p.acceptWord("WHERE") || p.tok.isPunct("{") {
		g, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		q.Where = g
	} else if needWhere {
		return nil, p.errorf("expected WHERE clause, found %s", p.tok)
	}

	if err := p.solutionModifiers(q); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *Parser) iriRef() (rdf.IRI, error) {
	switch p.tok.kind {
	case tIRI:
		iri := p.resolveIRI(p.tok.text)
		return iri, p.advance()
	case tPName:
		iri, err := p.expandPName(p.tok.text)
		if err != nil {
			return "", err
		}
		return iri, p.advance()
	default:
		return "", p.errorf("expected IRI, found %s", p.tok)
	}
}

func (p *Parser) solutionModifiers(q *Query) error {
	if p.acceptWord("GROUP") {
		if err := p.expectWord("BY"); err != nil {
			return err
		}
		for {
			switch {
			case p.tok.kind == tVar:
				q.GroupBy = append(q.GroupBy, EVar{Name: p.tok.text})
				if err := p.advance(); err != nil {
					return err
				}
				continue
			case p.tok.isPunct("("):
				if err := p.advance(); err != nil {
					return err
				}
				e, err := p.expression()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.GroupBy = append(q.GroupBy, e)
				continue
			}
			break
		}
		if len(q.GroupBy) == 0 {
			return p.errorf("GROUP BY needs at least one expression")
		}
	}
	if p.acceptWord("HAVING") {
		for p.tok.isPunct("(") {
			if err := p.advance(); err != nil {
				return err
			}
			e, err := p.expression()
			if err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			q.Having = append(q.Having, e)
		}
		if len(q.Having) == 0 {
			return p.errorf("HAVING needs at least one constraint")
		}
	}
	if p.acceptWord("ORDER") {
		if err := p.expectWord("BY"); err != nil {
			return err
		}
		for {
			switch {
			case p.tok.isWord("ASC"), p.tok.isWord("DESC"):
				desc := p.tok.isWord("DESC")
				if err := p.advance(); err != nil {
					return err
				}
				if err := p.expectPunct("("); err != nil {
					return err
				}
				e, err := p.expression()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderCond{Expr: e, Desc: desc})
				continue
			case p.tok.kind == tVar:
				q.OrderBy = append(q.OrderBy, OrderCond{Expr: EVar{Name: p.tok.text}})
				if err := p.advance(); err != nil {
					return err
				}
				continue
			case p.tok.isPunct("("):
				if err := p.advance(); err != nil {
					return err
				}
				e, err := p.expression()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderCond{Expr: e})
				continue
			}
			break
		}
		if len(q.OrderBy) == 0 {
			return p.errorf("ORDER BY needs at least one criterion")
		}
	}
	for {
		switch {
		case p.tok.isWord("LIMIT"):
			if err := p.advance(); err != nil {
				return err
			}
			n, err := p.intLiteral()
			if err != nil {
				return err
			}
			q.Limit = n
			continue
		case p.tok.isWord("OFFSET"):
			if err := p.advance(); err != nil {
				return err
			}
			n, err := p.intLiteral()
			if err != nil {
				return err
			}
			q.Offset = n
			continue
		}
		break
	}
	return nil
}

func (p *Parser) intLiteral() (int, error) {
	if p.tok.kind != tInt {
		return 0, p.errorf("expected integer, found %s", p.tok)
	}
	n, err := strconv.Atoi(p.tok.text)
	if err != nil || n < 0 {
		return 0, p.errorf("bad count %q", p.tok.text)
	}
	return n, p.advance()
}

// --- graph patterns ---

func (p *Parser) groupGraphPattern() (*Group, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	// SPARQL 1.1 subquery: "{ SELECT ... }".
	if p.tok.isWord("SELECT") {
		q, err := p.query()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return &Group{Elems: []Element{SubSelect{Query: q}}}, nil
	}
	g := &Group{}
	for !p.tok.isPunct("}") {
		if p.tok.kind == tEOF {
			return nil, p.errorf("unterminated group graph pattern")
		}
		switch {
		case p.tok.isWord("OPTIONAL"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			sub, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, Optional{Group: sub})
		case p.tok.isWord("MINUS"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			sub, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, Minus{Group: sub})
		case p.tok.isWord("FILTER"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.constraint()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, Filter{Cond: e})
		case p.tok.isWord("BIND"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectWord("AS"); err != nil {
				return nil, err
			}
			if p.tok.kind != tVar {
				return nil, p.errorf("expected variable after AS")
			}
			name := p.tok.text
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, Bind{Expr: e, Var: name})
		case p.tok.isWord("VALUES"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			vb, err := p.inlineData()
			if err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, *vb)
		case p.tok.isWord("GRAPH"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			gc := GraphClause{}
			if p.tok.kind == tVar {
				gc.Var = p.tok.text
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else {
				iri, err := p.iriRef()
				if err != nil {
					return nil, err
				}
				gc.Name = iri
			}
			sub, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			gc.Group = sub
			g.Elems = append(g.Elems, gc)
		case p.tok.isPunct("{"):
			// Sub-group, possibly a UNION chain.
			first, err := p.groupGraphPattern()
			if err != nil {
				return nil, err
			}
			branches := []*Group{first}
			for p.tok.isWord("UNION") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				next, err := p.groupGraphPattern()
				if err != nil {
					return nil, err
				}
				branches = append(branches, next)
			}
			if len(branches) > 1 {
				g.Elems = append(g.Elems, Union{Branches: branches})
			} else if len(first.Elems) == 1 {
				if ss, isSub := first.Elems[0].(SubSelect); isSub {
					g.Elems = append(g.Elems, ss)
				} else {
					g.Elems = append(g.Elems, SubGroup{Group: first})
				}
			} else {
				g.Elems = append(g.Elems, SubGroup{Group: first})
			}
		case p.tok.isPunct("."):
			if err := p.advance(); err != nil {
				return nil, err
			}
		default:
			bgp := &BGP{}
			if err := p.triplesBlock(bgp); err != nil {
				return nil, err
			}
			g.Elems = append(g.Elems, *bgp)
		}
	}
	return g, p.advance()
}

// inlineData parses VALUES ?v { ... } or VALUES (?a ?b) { (...) ... }.
func (p *Parser) inlineData() (*InlineData, error) {
	vb := &InlineData{}
	single := false
	switch {
	case p.tok.kind == tVar:
		vb.Vars = []string{p.tok.text}
		single = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	case p.tok.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		for p.tok.kind == tVar {
			vb.Vars = append(vb.Vars, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	default:
		return nil, p.errorf("expected VALUES variables, found %s", p.tok)
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.tok.isPunct("}") {
		if single {
			t, err := p.dataValue()
			if err != nil {
				return nil, err
			}
			vb.Rows = append(vb.Rows, []rdf.Term{t})
			continue
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []rdf.Term
		for !p.tok.isPunct(")") {
			t, err := p.dataValue()
			if err != nil {
				return nil, err
			}
			row = append(row, t)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if len(row) != len(vb.Vars) {
			return nil, p.errorf("VALUES row has %d terms for %d variables", len(row), len(vb.Vars))
		}
		vb.Rows = append(vb.Rows, row)
	}
	return vb, p.advance()
}

// dataValue parses a ground term or UNDEF (returned as nil).
func (p *Parser) dataValue() (rdf.Term, error) {
	if p.tok.isWord("UNDEF") {
		return nil, p.advance()
	}
	n, err := p.nodeTerm(false)
	if err != nil {
		return nil, err
	}
	if n.IsVar() {
		return nil, p.errorf("variables not allowed in VALUES data")
	}
	return n.Term, nil
}

// --- triples ---

// triplesBlock parses consecutive triple patterns into bgp.
func (p *Parser) triplesBlock(bgp *BGP) error {
	for {
		before := len(bgp.Triples)
		subj, err := p.nodeOrSyntacticSugar(bgp)
		if err != nil {
			return err
		}
		// A blank-node property list or collection may stand alone as a
		// whole triples block (SPARQL TriplesNode with empty
		// PropertyList).
		sugar := len(bgp.Triples) > before
		if sugar && (p.tok.isPunct(".") || p.tok.isPunct("}")) {
			// no predicate-object list
		} else if err := p.predicateObjectList(bgp, subj); err != nil {
			return err
		}
		if p.tok.isPunct(".") {
			if err := p.advance(); err != nil {
				return err
			}
			// Another triples block may follow.
			if p.startsTriple() {
				continue
			}
		}
		return nil
	}
}

// startsTriple reports whether the current token can begin a triple
// pattern subject.
func (p *Parser) startsTriple() bool {
	switch p.tok.kind {
	case tVar, tIRI, tPName, tBlank, tInt, tDec, tDbl, tString:
		return true
	case tPunct:
		return p.tok.text == "[" || p.tok.text == "("
	case tWord:
		return p.tok.isWord("true") || p.tok.isWord("false")
	}
	return false
}

// nodeOrSyntacticSugar parses a subject/object node, expanding blank
// node property lists and collections into extra triple patterns.
func (p *Parser) nodeOrSyntacticSugar(bgp *BGP) (Node, error) {
	switch {
	case p.tok.isPunct("["):
		if err := p.advance(); err != nil {
			return Node{}, err
		}
		node := NewTermNode(p.freshBlank())
		if !p.tok.isPunct("]") {
			if err := p.predicateObjectList(bgp, node); err != nil {
				return Node{}, err
			}
		}
		if err := p.expectPunct("]"); err != nil {
			return Node{}, err
		}
		return node, nil
	case p.tok.isPunct("("):
		if err := p.advance(); err != nil {
			return Node{}, err
		}
		var items []Node
		for !p.tok.isPunct(")") {
			if p.tok.kind == tEOF {
				return Node{}, p.errorf("unterminated collection")
			}
			item, err := p.nodeOrSyntacticSugar(bgp)
			if err != nil {
				return Node{}, err
			}
			items = append(items, item)
		}
		if err := p.advance(); err != nil {
			return Node{}, err
		}
		if len(items) == 0 {
			return NewTermNode(rdf.RDFNil), nil
		}
		head := NewTermNode(p.freshBlank())
		cur := head
		for i, item := range items {
			bgp.Triples = append(bgp.Triples, TriplePattern{S: cur, Path: PathIRI{IRI: rdf.RDFFirst}, O: item})
			if i == len(items)-1 {
				bgp.Triples = append(bgp.Triples, TriplePattern{S: cur, Path: PathIRI{IRI: rdf.RDFRest}, O: NewTermNode(rdf.RDFNil)})
			} else {
				next := NewTermNode(p.freshBlank())
				bgp.Triples = append(bgp.Triples, TriplePattern{S: cur, Path: PathIRI{IRI: rdf.RDFRest}, O: next})
				cur = next
			}
		}
		return head, nil
	default:
		return p.nodeTerm(true)
	}
}

// nodeTerm parses a plain node: variable (if allowed), IRI, literal or
// blank node label.
func (p *Parser) nodeTerm(allowVar bool) (Node, error) {
	switch p.tok.kind {
	case tVar:
		if !allowVar {
			return Node{}, p.errorf("variable not allowed here")
		}
		n := NewVarNode(p.tok.text)
		return n, p.advance()
	case tIRI:
		n := NewTermNode(p.resolveIRI(p.tok.text))
		return n, p.advance()
	case tPName:
		iri, err := p.expandPName(p.tok.text)
		if err != nil {
			return Node{}, err
		}
		return NewTermNode(iri), p.advance()
	case tBlank:
		return NewTermNode(rdf.Blank("u" + p.tok.text)), p.advance()
	case tInt:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return Node{}, p.errorf("bad integer %q", p.tok.text)
		}
		return NewTermNode(rdf.Integer(v)), p.advance()
	case tDec, tDbl:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return Node{}, p.errorf("bad number %q", p.tok.text)
		}
		return NewTermNode(rdf.Float(v)), p.advance()
	case tString:
		t, err := p.literalTail(p.tok.text)
		if err != nil {
			return Node{}, err
		}
		return NewTermNode(t), nil
	case tWord:
		switch {
		case p.tok.isWord("true"):
			return NewTermNode(rdf.Boolean(true)), p.advance()
		case p.tok.isWord("false"):
			return NewTermNode(rdf.Boolean(false)), p.advance()
		}
	case tPunct:
		if p.tok.text == "-" {
			// Negative numeric literal.
			if err := p.advance(); err != nil {
				return Node{}, err
			}
			n, err := p.nodeTerm(false)
			if err != nil {
				return Node{}, err
			}
			switch v := n.Term.(type) {
			case rdf.Integer:
				return NewTermNode(rdf.Integer(-v)), nil
			case rdf.Float:
				return NewTermNode(rdf.Float(-v)), nil
			}
			return Node{}, p.errorf("expected number after '-'")
		}
	}
	return Node{}, p.errorf("expected RDF term, found %s", p.tok)
}

// literalTail consumes optional @lang / ^^datatype after a string.
func (p *Parser) literalTail(val string) (rdf.Term, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch {
	case p.tok.kind == tLang:
		lang := p.tok.text
		if lang == "" {
			return nil, p.errorf("empty language tag")
		}
		return rdf.String{Val: val, Lang: lang}, p.advance()
	case p.tok.isPunct("^^"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		dt, err := p.iriRef()
		if err != nil {
			return nil, err
		}
		return typedLiteral(val, dt)
	default:
		return rdf.String{Val: val}, nil
	}
}

func typedLiteral(val string, dt rdf.IRI) (rdf.Term, error) {
	switch dt {
	case rdf.XSDInteger:
		v, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sciSPARQL: bad xsd:integer literal %q", val)
		}
		return rdf.Integer(v), nil
	case rdf.XSDDouble, rdf.XSDDecimal:
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("sciSPARQL: bad numeric literal %q", val)
		}
		return rdf.Float(v), nil
	case rdf.XSDBoolean:
		switch strings.TrimSpace(val) {
		case "true", "1":
			return rdf.Boolean(true), nil
		case "false", "0":
			return rdf.Boolean(false), nil
		}
		return nil, fmt.Errorf("sciSPARQL: bad xsd:boolean literal %q", val)
	case rdf.XSDDateTime:
		t, err := time.Parse(time.RFC3339, strings.TrimSpace(val))
		if err != nil {
			return nil, fmt.Errorf("sciSPARQL: bad xsd:dateTime literal %q", val)
		}
		return rdf.DateTime{T: t}, nil
	case rdf.XSDString:
		return rdf.String{Val: val}, nil
	default:
		return rdf.Typed{Lexical: val, Datatype: dt}, nil
	}
}

func (p *Parser) predicateObjectList(bgp *BGP, subj Node) error {
	for {
		path, err := p.path()
		if err != nil {
			return err
		}
		for {
			obj, err := p.nodeOrSyntacticSugar(bgp)
			if err != nil {
				return err
			}
			bgp.Triples = append(bgp.Triples, TriplePattern{S: subj, Path: path, O: obj})
			if p.tok.isPunct(",") {
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if p.tok.isPunct(";") {
			if err := p.advance(); err != nil {
				return err
			}
			// Tolerate trailing ';' before terminators.
			if p.tok.isPunct(".") || p.tok.isPunct("}") || p.tok.isPunct("]") || p.tok.kind == tEOF {
				return nil
			}
			continue
		}
		return nil
	}
}

// --- property paths (§3.4) ---

func (p *Parser) path() (Path, error) {
	if p.tok.kind == tVar {
		pv := PathVar{Name: p.tok.text}
		return pv, p.advance()
	}
	return p.pathAlternative()
}

func (p *Parser) pathAlternative() (Path, error) {
	left, err := p.pathSequence()
	if err != nil {
		return nil, err
	}
	for p.tok.isPunct("|") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.pathSequence()
		if err != nil {
			return nil, err
		}
		left = PathAlt{L: left, R: right}
	}
	return left, nil
}

func (p *Parser) pathSequence() (Path, error) {
	left, err := p.pathEltOrInverse()
	if err != nil {
		return nil, err
	}
	for p.tok.isPunct("/") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.pathEltOrInverse()
		if err != nil {
			return nil, err
		}
		left = PathSeq{L: left, R: right}
	}
	return left, nil
}

func (p *Parser) pathEltOrInverse() (Path, error) {
	if p.tok.isPunct("^") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.pathElt()
		if err != nil {
			return nil, err
		}
		return PathInverse{P: inner}, nil
	}
	return p.pathElt()
}

func (p *Parser) pathElt() (Path, error) {
	prim, err := p.pathPrimary()
	if err != nil {
		return nil, err
	}
	switch {
	case p.tok.isPunct("*"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return PathRepeat{P: prim, Min: 0, Unbounded: true}, nil
	case p.tok.isPunct("+"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return PathRepeat{P: prim, Min: 1, Unbounded: true}, nil
	case p.tok.isPunct("?"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return PathRepeat{P: prim, Min: 0, Unbounded: false}, nil
	}
	return prim, nil
}

func (p *Parser) pathPrimary() (Path, error) {
	switch {
	case p.tok.isPunct("!"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.negatedPropertySet()
	case p.tok.isWord("a"):
		pp := PathIRI{IRI: rdf.RDFType}
		return pp, p.advance()
	case p.tok.kind == tIRI:
		pp := PathIRI{IRI: p.resolveIRI(p.tok.text)}
		return pp, p.advance()
	case p.tok.kind == tPName:
		iri, err := p.expandPName(p.tok.text)
		if err != nil {
			return nil, err
		}
		return PathIRI{IRI: iri}, p.advance()
	case p.tok.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.pathAlternative()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, p.errorf("expected property path, found %s", p.tok)
	}
}

// negatedPropertySet parses the body of !iri or !(iri|^iri|...).
func (p *Parser) negatedPropertySet() (Path, error) {
	out := PathNegated{}
	one := func() error {
		inv := false
		if p.tok.isPunct("^") {
			inv = true
			if err := p.advance(); err != nil {
				return err
			}
		}
		var iri rdf.IRI
		if p.tok.isWord("a") {
			iri = rdf.RDFType
			if err := p.advance(); err != nil {
				return err
			}
		} else {
			var err error
			iri, err = p.iriRef()
			if err != nil {
				return err
			}
		}
		if inv {
			out.Inv = append(out.Inv, iri)
		} else {
			out.Fwd = append(out.Fwd, iri)
		}
		return nil
	}
	if p.tok.isPunct("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			if err := one(); err != nil {
				return nil, err
			}
			if p.tok.isPunct("|") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return out, nil
	}
	if err := one(); err != nil {
		return nil, err
	}
	return out, nil
}

// templateBlock parses a { triples } template (CONSTRUCT, updates).
// Property paths are not allowed; predicates must be IRIs or vars.
func (p *Parser) templateBlock() ([]TriplePattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	bgp := &BGP{}
	for !p.tok.isPunct("}") {
		if p.tok.kind == tEOF {
			return nil, p.errorf("unterminated template")
		}
		if p.tok.isPunct(".") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		if err := p.triplesBlock(bgp); err != nil {
			return nil, err
		}
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for _, tp := range bgp.Triples {
		switch tp.Path.(type) {
		case PathIRI, PathVar:
		default:
			return nil, fmt.Errorf("sciSPARQL: property paths are not allowed in templates")
		}
	}
	return bgp.Triples, nil
}
