package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"scisparql/internal/scanesc"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIRI
	tPName
	tVar
	tBlank
	tString
	tInt
	tDec
	tDbl
	tLang
	tWord  // bare identifier: keywords, builtin names, a/true/false
	tPunct // structural characters and operators
)

type tok struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t tok) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// isWord reports a case-insensitive keyword match.
func (t tok) isWord(kw string) bool {
	return t.kind == tWord && strings.EqualFold(t.text, kw)
}

func (t tok) isPunct(s string) bool {
	return t.kind == tPunct && t.text == s
}

type sLexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newSLexer(src string) *sLexer { return &sLexer{src: src, line: 1, col: 1} }

func (l *sLexer) errorf(format string, args ...any) error {
	return fmt.Errorf("sciSPARQL: line %d col %d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *sLexer) peekAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return -1
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos+off:])
	return r
}

func (l *sLexer) peek() rune { return l.peekAt(0) }

func (l *sLexer) advance() rune {
	if l.pos >= len(l.src) {
		return -1
	}
	r, w := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *sLexer) skipSpace() {
	for {
		r := l.peek()
		if r == '#' {
			for r != '\n' && r != -1 {
				r = l.advance()
			}
			continue
		}
		if r == -1 || !unicode.IsSpace(r) {
			return
		}
		l.advance()
	}
}

func isNameStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isNameChar(r rune) bool {
	return r == '_' || r == '-' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// looksLikeIRI decides whether '<' at the current position opens an
// IRIREF: a '>' must appear before any whitespace, quote or second '<'.
func (l *sLexer) looksLikeIRI() bool {
	for i := l.pos + 1; i < len(l.src); i++ {
		c := l.src[i]
		switch {
		case c == '>':
			return true
		case c == '<' || c == '"' || unicode.IsSpace(rune(c)):
			return false
		}
	}
	return false
}

func (l *sLexer) next() (tok, error) {
	l.skipSpace()
	line, col := l.line, l.col
	mk := func(k tokKind, text string) tok { return tok{kind: k, text: text, line: line, col: col} }
	r := l.peek()
	switch {
	case r == -1:
		return mk(tEOF, ""), nil
	case r == '<' && l.looksLikeIRI():
		l.advance()
		var sb strings.Builder
		for {
			c := l.advance()
			if c == -1 {
				return tok{}, l.errorf("unterminated IRI")
			}
			if c == '>' {
				return mk(tIRI, sb.String()), nil
			}
			// IRIREF admits UCHAR escapes (\uXXXX, \UXXXXXXXX) and
			// nothing else after a backslash.
			if c == '\\' {
				e := l.advance()
				if e != 'u' && e != 'U' {
					return tok{}, l.errorf("bad escape \\%c in IRI (only \\u and \\U are allowed)", e)
				}
				v, err := scanesc.DecodeUCHAR(e, l.advance)
				if err != nil {
					return tok{}, l.errorf("%s", err)
				}
				sb.WriteRune(v)
				continue
			}
			sb.WriteRune(c)
		}
	case r == '?' || r == '$':
		if isNameStart(l.peekAt(1)) || unicode.IsDigit(l.peekAt(1)) {
			l.advance()
			var sb strings.Builder
			for isNameChar(l.peek()) {
				sb.WriteRune(l.advance())
			}
			return mk(tVar, sb.String()), nil
		}
		l.advance()
		return mk(tPunct, "?"), nil
	case r == '"' || r == '\'':
		s, err := l.scanString()
		if err != nil {
			return tok{}, err
		}
		return mk(tString, s), nil
	case r == '@':
		l.advance()
		var sb strings.Builder
		for isNameChar(l.peek()) {
			sb.WriteRune(l.advance())
		}
		return mk(tLang, sb.String()), nil
	case r == '_':
		if l.peekAt(1) == ':' {
			l.advance()
			l.advance()
			var sb strings.Builder
			for isNameChar(l.peek()) {
				sb.WriteRune(l.advance())
			}
			return mk(tBlank, sb.String()), nil
		}
		l.advance()
		return mk(tPunct, "_"), nil
	case unicode.IsDigit(r):
		return l.scanNumber(line, col)
	case r == '^':
		l.advance()
		if l.peek() == '^' {
			l.advance()
			return mk(tPunct, "^^"), nil
		}
		return mk(tPunct, "^"), nil
	case r == '&':
		l.advance()
		if l.peek() != '&' {
			return tok{}, l.errorf("expected '&&'")
		}
		l.advance()
		return mk(tPunct, "&&"), nil
	case r == '|':
		l.advance()
		if l.peek() == '|' {
			l.advance()
			return mk(tPunct, "||"), nil
		}
		return mk(tPunct, "|"), nil
	case r == '!':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return mk(tPunct, "!="), nil
		}
		return mk(tPunct, "!"), nil
	case r == '<':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return mk(tPunct, "<="), nil
		}
		return mk(tPunct, "<"), nil
	case r == '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return mk(tPunct, ">="), nil
		}
		return mk(tPunct, ">"), nil
	case strings.ContainsRune("{}()[],;.=*/+-", r):
		l.advance()
		// Negative numeric literals are produced by the parser from
		// unary minus; '.' is always punctuation here because bare
		// decimals start with a digit in SPARQL.
		return mk(tPunct, string(r)), nil
	case r == ':' && !isNameStart(l.peekAt(1)):
		// A bare ':' (e.g. inside array subscripts) is punctuation; a
		// ':' followed by a name char opens an empty-prefix PName.
		l.advance()
		return mk(tPunct, ":"), nil
	case isNameStart(r) || r == ':':
		var sb strings.Builder
		hasColon := false
		for {
			c := l.peek()
			if c == ':' {
				hasColon = true
				sb.WriteRune(l.advance())
				continue
			}
			if isNameChar(c) {
				sb.WriteRune(l.advance())
				continue
			}
			break
		}
		word := sb.String()
		if hasColon {
			return mk(tPName, word), nil
		}
		return mk(tWord, word), nil
	default:
		return tok{}, l.errorf("unexpected character %q", r)
	}
}

func (l *sLexer) scanString() (string, error) {
	quote := l.advance()
	long := false
	if l.peek() == quote {
		l.advance()
		if l.peek() == quote {
			l.advance()
			long = true
		} else {
			return "", nil
		}
	}
	var sb strings.Builder
	for {
		c := l.advance()
		if c == -1 {
			return "", l.errorf("unterminated string")
		}
		if c == quote {
			if !long {
				return sb.String(), nil
			}
			if l.peek() == quote {
				l.advance()
				if l.peek() == quote {
					l.advance()
					return sb.String(), nil
				}
				sb.WriteRune(quote)
				sb.WriteRune(quote)
				continue
			}
			sb.WriteRune(quote)
			continue
		}
		if c == '\\' {
			e := l.advance()
			switch e {
			case 't':
				sb.WriteRune('\t')
			case 'n':
				sb.WriteRune('\n')
			case 'r':
				sb.WriteRune('\r')
			case 'b':
				sb.WriteRune('\b')
			case 'f':
				sb.WriteRune('\f')
			case '"', '\'', '\\':
				sb.WriteRune(e)
			case 'u', 'U':
				v, err := scanesc.DecodeUCHAR(e, l.advance)
				if err != nil {
					return "", l.errorf("%s", err)
				}
				sb.WriteRune(v)
			default:
				return "", l.errorf("bad escape \\%c", e)
			}
			continue
		}
		sb.WriteRune(c)
	}
}

func (l *sLexer) scanNumber(line, col int) (tok, error) {
	var sb strings.Builder
	kind := tInt
	for unicode.IsDigit(l.peek()) {
		sb.WriteRune(l.advance())
	}
	if l.peek() == '.' && unicode.IsDigit(l.peekAt(1)) {
		kind = tDec
		sb.WriteRune(l.advance())
		for unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
	}
	if p := l.peek(); p == 'e' || p == 'E' {
		// Only an exponent when followed by digits (or sign+digits).
		off := 1
		if s := l.peekAt(1); s == '+' || s == '-' {
			off = 2
		}
		if unicode.IsDigit(l.peekAt(off)) {
			kind = tDbl
			sb.WriteRune(l.advance())
			if s := l.peek(); s == '+' || s == '-' {
				sb.WriteRune(l.advance())
			}
			for unicode.IsDigit(l.peek()) {
				sb.WriteRune(l.advance())
			}
		}
	}
	return tok{kind: kind, text: sb.String(), line: line, col: col}, nil
}
