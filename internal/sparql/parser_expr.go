package sparql

import (
	"strconv"
	"strings"
)

// constraint parses a FILTER argument: a bracketted expression, a
// built-in call, or (NOT) EXISTS.
func (p *Parser) constraint() (Expression, error) {
	switch {
	case p.tok.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.isWord("EXISTS"), p.tok.isWord("NOT"):
		return p.existsExpr()
	case p.tok.kind == tWord:
		return p.callOrKeywordExpr()
	default:
		return nil, p.errorf("expected filter constraint, found %s", p.tok)
	}
}

func (p *Parser) existsExpr() (Expression, error) {
	not := false
	if p.acceptWord("NOT") {
		not = true
	}
	if err := p.expectWord("EXISTS"); err != nil {
		return nil, err
	}
	g, err := p.groupGraphPattern()
	if err != nil {
		return nil, err
	}
	return EExists{Not: not, Group: g}, nil
}

// expression parses a full SciSPARQL expression (logical OR level).
func (p *Parser) expression() (Expression, error) {
	left, err := p.andExpression()
	if err != nil {
		return nil, err
	}
	for p.tok.isPunct("||") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.andExpression()
		if err != nil {
			return nil, err
		}
		left = EBin{Op: "||", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) andExpression() (Expression, error) {
	left, err := p.relational()
	if err != nil {
		return nil, err
	}
	for p.tok.isPunct("&&") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.relational()
		if err != nil {
			return nil, err
		}
		left = EBin{Op: "&&", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) relational() (Expression, error) {
	left, err := p.additive()
	if err != nil {
		return nil, err
	}
	switch {
	case p.tok.isPunct("="), p.tok.isPunct("!="), p.tok.isPunct("<"),
		p.tok.isPunct("<="), p.tok.isPunct(">"), p.tok.isPunct(">="):
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.additive()
		if err != nil {
			return nil, err
		}
		return EBin{Op: op, L: left, R: right}, nil
	case p.tok.isWord("IN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		list, err := p.expressionList()
		if err != nil {
			return nil, err
		}
		return EIn{E: left, List: list}, nil
	case p.tok.isWord("NOT"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectWord("IN"); err != nil {
			return nil, err
		}
		list, err := p.expressionList()
		if err != nil {
			return nil, err
		}
		return EIn{Not: true, E: left, List: list}, nil
	}
	return left, nil
}

func (p *Parser) expressionList() ([]Expression, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []Expression
	for {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if p.tok.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return out, p.expectPunct(")")
}

func (p *Parser) additive() (Expression, error) {
	left, err := p.multiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.isPunct("+") || p.tok.isPunct("-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.multiplicative()
		if err != nil {
			return nil, err
		}
		left = EBin{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) multiplicative() (Expression, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.tok.isPunct("*") || p.tok.isPunct("/") || p.tok.isWord("MOD") {
		op := p.tok.text
		if p.tok.isWord("MOD") {
			op = "MOD"
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = EBin{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *Parser) unary() (Expression, error) {
	switch {
	case p.tok.isPunct("!"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return EUn{Op: "!", E: e}, nil
	case p.tok.isPunct("-"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return EUn{Op: "-", E: e}, nil
	case p.tok.isPunct("+"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.unary()
	}
	return p.postfix()
}

// postfix parses a primary expression followed by any number of array
// dereference brackets (§4.1.1).
func (p *Parser) postfix() (Expression, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.tok.isPunct("[") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		var subs []Subscript
		for {
			s, err := p.subscript()
			if err != nil {
				return nil, err
			}
			subs = append(subs, s)
			if p.tok.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		e = ESubscript{Base: e, Subs: subs}
	}
	return e, nil
}

// subscript parses one dimension subscript: expr, or Matlab-style
// ranges lo:hi / lo:step:hi with optional bounds (':' alone selects the
// whole dimension).
func (p *Parser) subscript() (Subscript, error) {
	var first Expression
	if !p.tok.isPunct(":") {
		e, err := p.expression()
		if err != nil {
			return Subscript{}, err
		}
		first = e
	}
	if !p.tok.isPunct(":") {
		if first == nil {
			return Subscript{}, p.errorf("expected subscript")
		}
		return Subscript{Single: true, Index: first}, nil
	}
	if err := p.advance(); err != nil { // consume ':'
		return Subscript{}, err
	}
	var second Expression
	if !p.tok.isPunct(":") && !p.tok.isPunct(",") && !p.tok.isPunct("]") {
		e, err := p.expression()
		if err != nil {
			return Subscript{}, err
		}
		second = e
	}
	if p.tok.isPunct(":") {
		// lo : step : hi
		if err := p.advance(); err != nil {
			return Subscript{}, err
		}
		var third Expression
		if !p.tok.isPunct(",") && !p.tok.isPunct("]") {
			e, err := p.expression()
			if err != nil {
				return Subscript{}, err
			}
			third = e
		}
		return Subscript{Lo: first, Step: second, Hi: third}, nil
	}
	return Subscript{Lo: first, Hi: second}, nil
}

// aggregate function names.
func isAggregateName(s string) bool {
	switch strings.ToUpper(s) {
	case "COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT":
		return true
	}
	return false
}

func (p *Parser) primary() (Expression, error) {
	switch p.tok.kind {
	case tPunct:
		switch p.tok.text {
		case "(":
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "_":
			if err := p.advance(); err != nil {
				return nil, err
			}
			return EHole{}, nil
		}
	case tVar:
		e := EVar{Name: p.tok.text}
		return e, p.advance()
	case tInt:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q", p.tok.text)
		}
		return ELit{Term: intTerm(v)}, p.advance()
	case tDec, tDbl:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", p.tok.text)
		}
		return ELit{Term: floatTerm(v)}, p.advance()
	case tString:
		t, err := p.literalTail(p.tok.text)
		if err != nil {
			return nil, err
		}
		return ELit{Term: t}, nil
	case tIRI, tPName:
		iri, err := p.iriRef()
		if err != nil {
			return nil, err
		}
		if p.tok.isPunct("(") {
			return p.callArgs(string(iri))
		}
		return ELit{Term: iri}, nil
	case tWord:
		return p.callOrKeywordExpr()
	}
	return nil, p.errorf("expected expression, found %s", p.tok)
}

// callOrKeywordExpr handles bare words in expression position: boolean
// literals, EXISTS forms, aggregates, and built-in function calls.
func (p *Parser) callOrKeywordExpr() (Expression, error) {
	switch {
	case p.tok.isWord("true"):
		return ELit{Term: boolTerm(true)}, p.advance()
	case p.tok.isWord("false"):
		return ELit{Term: boolTerm(false)}, p.advance()
	case p.tok.isWord("EXISTS"), p.tok.isWord("NOT"):
		return p.existsExpr()
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if !p.tok.isPunct("(") {
		return nil, p.errorf("expected '(' after %q", name)
	}
	if isAggregateName(name) {
		return p.aggregateCall(strings.ToUpper(name))
	}
	return p.callArgs(strings.ToLower(name))
}

func (p *Parser) aggregateCall(fn string) (Expression, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	agg := EAgg{Func: fn}
	if p.acceptWord("DISTINCT") {
		agg.Distinct = true
	}
	if p.tok.isPunct("*") {
		if fn != "COUNT" {
			return nil, p.errorf("only COUNT accepts '*'")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		agg.Arg = e
	}
	// GROUP_CONCAT(expr ; SEPARATOR = "sep")
	if p.tok.isPunct(";") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectWord("SEPARATOR"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		if p.tok.kind != tString {
			return nil, p.errorf("expected separator string")
		}
		agg.Separator = p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return agg, nil
}

// callArgs parses "( args )" for a named function. A call containing
// `_` placeholders denotes a lexical closure (§4.3); a call with no
// parentheses content is a nullary call.
func (p *Parser) callArgs(name string) (Expression, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	call := ECall{Name: name}
	if !p.tok.isPunct(")") {
		for {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, e)
			if p.tok.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return call, nil
}
