package sparql

import (
	"testing"

	"scisparql/internal/rdf"
)

func TestParseSubSelect(t *testing.T) {
	q := parseQ(t, `
PREFIX ex: <http://ex/>
SELECT ?n WHERE {
  { SELECT (MAX(?v) AS ?m) WHERE { ?x ex:v ?v } }
  ?p ex:v ?m ; ex:name ?n .
}`)
	ss, ok := q.Where.Elems[0].(SubSelect)
	if !ok {
		t.Fatalf("%T", q.Where.Elems[0])
	}
	if ss.Query.Items[0].Var != "m" {
		t.Fatalf("%+v", ss.Query.Items)
	}
}

func TestParseNegatedPropertySet(t *testing.T) {
	q := parseQ(t, `PREFIX ex: <http://ex/> SELECT ?v WHERE { ex:s !ex:a ?v . ex:s !(ex:b|^ex:c|a) ?o }`)
	bgp := firstBGP(t, q.Where)
	n1 := bgp.Triples[0].Path.(PathNegated)
	if len(n1.Fwd) != 1 || n1.Fwd[0] != "http://ex/a" {
		t.Fatalf("%+v", n1)
	}
	n2 := bgp.Triples[1].Path.(PathNegated)
	if len(n2.Fwd) != 2 || len(n2.Inv) != 1 {
		t.Fatalf("%+v", n2)
	}
	if n2.Fwd[1] != rdf.RDFType {
		t.Fatalf("%+v", n2)
	}
	if n2.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestParseNegatedPropertySetErrors(t *testing.T) {
	bad := []string{
		`SELECT ?v WHERE { <s> !(<p> ?v }`,
		`SELECT ?v WHERE { <s> !5 ?v }`,
		`SELECT ?v WHERE { <s> !() ?v }`,
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestParseDescribeWithWhere(t *testing.T) {
	q := parseQ(t, `PREFIX ex: <http://ex/> DESCRIBE ?x WHERE { ?x a ex:T }`)
	if q.Form != FormDescribe || q.Where == nil {
		t.Fatalf("%+v", q)
	}
}

func TestParseReduced(t *testing.T) {
	q := parseQ(t, `SELECT REDUCED ?s WHERE { ?s ?p ?o }`)
	if !q.Reduced {
		t.Fatalf("%+v", q)
	}
}

func TestParseBaseResolution(t *testing.T) {
	q := parseQ(t, `BASE <http://ex/> SELECT ?v WHERE { <s> <p> ?v }`)
	tp := firstBGP(t, q.Where).Triples[0]
	if tp.S.Term != rdf.IRI("http://ex/s") {
		t.Fatalf("%v", tp.S)
	}
}

func TestParseOrderByPlainExpr(t *testing.T) {
	q := parseQ(t, `SELECT ?s WHERE { ?s ?p ?v } ORDER BY (?v * -1) ?s`)
	if len(q.OrderBy) != 2 {
		t.Fatalf("%+v", q.OrderBy)
	}
}

func TestParseGroupByExpr(t *testing.T) {
	q := parseQ(t, `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?v } GROUP BY (?v / 10)`)
	if len(q.GroupBy) != 1 {
		t.Fatalf("%+v", q.GroupBy)
	}
	if _, ok := q.GroupBy[0].(EBin); !ok {
		t.Fatalf("%T", q.GroupBy[0])
	}
}

func TestParseNestedGroups(t *testing.T) {
	q := parseQ(t, `SELECT ?s WHERE { { ?s ?p ?o } FILTER (?s != <http://x>) }`)
	if _, ok := q.Where.Elems[0].(SubGroup); !ok {
		t.Fatalf("%T", q.Where.Elems[0])
	}
}

func TestParseExprStringRenderings(t *testing.T) {
	// Smoke the String() methods used in diagnostics.
	q := parseQ(t, `
PREFIX ex: <http://ex/>
SELECT (map(ex:f(_, 2), ?a) AS ?x) (?a[1:2:5] NOT IN (1, 2) AS ?y) (!(?b > 1) AS ?z)
       (COUNT(DISTINCT ?a) AS ?c) (EXISTS { ?s ?p ?o } AS ?e)
WHERE { ?s ex:d ?a ; ex:e ?b }`)
	for _, it := range q.Items {
		if it.Expr != nil && it.Expr.String() == "" {
			t.Fatalf("empty rendering for %T", it.Expr)
		}
	}
	// Path renderings.
	q2 := parseQ(t, `PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x (ex:a/ex:b)|^ex:c* ?y }`)
	tp := firstBGP(t, q2.Where).Triples[0]
	if tp.Path.String() == "" || tp.String() == "" {
		t.Fatal("empty path rendering")
	}
}

func TestParseMoreErrors(t *testing.T) {
	bad := []string{
		`SELECT (1 AS ?v`,
		`SELECT (1 AS 2) WHERE {}`,
		`SELECT ?x WHERE { ?x <p> "a"@ }`,
		`SELECT ?x WHERE { ?x <p> ?y } ORDER BY`,
		`SELECT ?x WHERE { ?x <p> ?y } HAVING`,
		`SELECT ?x WHERE { BIND (1 AS 2) }`,
		`SELECT ?x WHERE { VALUES 5 { 1 } }`,
		`SELECT ?x WHERE { VALUES (?a ?b) { (1) } }`,
		`SELECT ?x WHERE { GRAPH { ?s ?p ?o } }`,
		`CONSTRUCT { ?s <p>* ?o } WHERE { ?s <p> ?o }`,
		`DELETE DATA { GRAPH <g> { ?v <p> 1 } }`,
		`LOAD`,
		`CLEAR`,
		`WITH <g> SELECT ?x WHERE {}`,
		`DEFINE TABLE x`,
		`DEFINE FUNCTION f(?x ?y`,
		`DEFINE AGGREGATE a() AS 1`,
		`SELECT ?x WHERE { ?s ?p "x"^^ }`,
		`SELECT ?x WHERE { ?s ?p ((1 2) }`,
		`SELECT COUNT(*) WHERE { ?s ?p ?o }`,
		`SELECT (AVG(*) AS ?v) WHERE { ?s ?p ?o }`,
	}
	for i, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Fatalf("case %d: expected error for %q", i, src)
		}
	}
}

func TestParseFilterBuiltinConstraintForm(t *testing.T) {
	// FILTER regex(...) without surrounding parentheses is legal.
	q := parseQ(t, `SELECT ?s WHERE { ?s <http://p> ?v FILTER regex(?v, "x") }`)
	f := q.Where.Elems[1].(Filter)
	if _, ok := f.Cond.(ECall); !ok {
		t.Fatalf("%T", f.Cond)
	}
}

func TestParseDoubleAndDecimalLiterals(t *testing.T) {
	q := parseQ(t, `SELECT ?s WHERE { ?s <http://p> 1.5e2 . ?s <http://q> 2.25 }`)
	bgp := firstBGP(t, q.Where)
	if bgp.Triples[0].O.Term != rdf.Float(150) || bgp.Triples[1].O.Term != rdf.Float(2.25) {
		t.Fatalf("%v", bgp.Triples)
	}
}

func TestParseLangTaggedAndTypedInExpr(t *testing.T) {
	q := parseQ(t, `SELECT ?s WHERE { ?s <http://p> ?v FILTER (?v = "x"@en || ?v = "5"^^<http://www.w3.org/2001/XMLSchema#integer>) }`)
	if q == nil {
		t.Fatal("nil query")
	}
}

func TestParseEmptyGroupAndEmptyWhere(t *testing.T) {
	q := parseQ(t, `SELECT (1 + 1 AS ?v) WHERE {}`)
	if len(q.Where.Elems) != 0 {
		t.Fatalf("%+v", q.Where)
	}
}

func TestParseVarDollarSyntax(t *testing.T) {
	q := parseQ(t, `SELECT $x WHERE { $x ?p ?o }`)
	if q.Items[0].Var != "x" {
		t.Fatalf("%+v", q.Items)
	}
}

func TestParseAnonBlankSubjectStandalone(t *testing.T) {
	q := parseQ(t, `PREFIX ex: <http://ex/> SELECT ?v WHERE { [ ex:p ?v ] . }`)
	bgp := firstBGP(t, q.Where)
	if len(bgp.Triples) != 1 {
		t.Fatalf("%v", bgp.Triples)
	}
}
