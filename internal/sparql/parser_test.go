package sparql

import (
	"testing"

	"scisparql/internal/rdf"
)

func parseQ(t *testing.T, src string) *Query {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("parse error: %v\nquery:\n%s", err, src)
	}
	return q
}

func firstBGP(t *testing.T, g *Group) BGP {
	t.Helper()
	for _, el := range g.Elems {
		if bgp, ok := el.(BGP); ok {
			return bgp
		}
	}
	t.Fatal("no BGP in group")
	return BGP{}
}

func TestParseSimpleSelect(t *testing.T) {
	q := parseQ(t, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?person WHERE { ?person foaf:name "Alice" }`)
	if q.Form != FormSelect || len(q.Items) != 1 || q.Items[0].Var != "person" {
		t.Fatalf("%+v", q)
	}
	bgp := firstBGP(t, q.Where)
	if len(bgp.Triples) != 1 {
		t.Fatalf("triples %d", len(bgp.Triples))
	}
	tp := bgp.Triples[0]
	if !tp.S.IsVar() || tp.S.Var != "person" {
		t.Fatalf("subject %v", tp.S)
	}
	if p, ok := tp.Path.(PathIRI); !ok || p.IRI != "http://xmlns.com/foaf/0.1/name" {
		t.Fatalf("path %v", tp.Path)
	}
	if s, ok := tp.O.Term.(rdf.String); !ok || s.Val != "Alice" {
		t.Fatalf("object %v", tp.O)
	}
}

func TestParseSelectStarDistinct(t *testing.T) {
	q := parseQ(t, `SELECT DISTINCT * WHERE { ?s ?p ?o }`)
	if !q.Star || !q.Distinct {
		t.Fatalf("%+v", q)
	}
	tp := firstBGP(t, q.Where).Triples[0]
	if _, ok := tp.Path.(PathVar); !ok {
		t.Fatalf("predicate should be a variable: %v", tp.Path)
	}
}

func TestParseSemicolonCommaAndA(t *testing.T) {
	q := parseQ(t, `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?n WHERE {
  ?p a foaf:Person ;
     foaf:name ?n ;
     foaf:knows ?x , ?y .
}`)
	bgp := firstBGP(t, q.Where)
	if len(bgp.Triples) != 4 {
		t.Fatalf("triples %d", len(bgp.Triples))
	}
	if p := bgp.Triples[0].Path.(PathIRI); p.IRI != rdf.RDFType {
		t.Fatalf("a not expanded: %v", p)
	}
}

func TestParseOptionalFilterBind(t *testing.T) {
	q := parseQ(t, `
PREFIX ex: <http://ex/>
SELECT ?x ?mail WHERE {
  ?x ex:name ?n .
  OPTIONAL { ?x ex:mbox ?mail }
  FILTER (?n != "Bob" && bound(?mail))
  BIND (?n AS ?alias)
}`)
	var haveOpt, haveFilter, haveBind bool
	for _, el := range q.Where.Elems {
		switch el.(type) {
		case Optional:
			haveOpt = true
		case Filter:
			haveFilter = true
		case Bind:
			haveBind = true
		}
	}
	if !haveOpt || !haveFilter || !haveBind {
		t.Fatalf("opt=%v filter=%v bind=%v", haveOpt, haveFilter, haveBind)
	}
}

func TestParseUnionChain(t *testing.T) {
	q := parseQ(t, `
PREFIX ex: <http://ex/>
SELECT ?v WHERE {
  { ?s ex:a ?v } UNION { ?s ex:b ?v } UNION { ?s ex:c ?v }
}`)
	u, ok := q.Where.Elems[0].(Union)
	if !ok || len(u.Branches) != 3 {
		t.Fatalf("%+v", q.Where.Elems[0])
	}
}

func TestParsePropertyPaths(t *testing.T) {
	q := parseQ(t, `
PREFIX ex: <http://ex/>
SELECT ?x WHERE { ?x (ex:p/ex:q)|^ex:r ?y . ?y ex:s* ?z . ?z ex:t+ ?w . ?w ex:u? ?v }`)
	bgp := firstBGP(t, q.Where)
	if len(bgp.Triples) != 4 {
		t.Fatalf("triples %d", len(bgp.Triples))
	}
	if _, ok := bgp.Triples[0].Path.(PathAlt); !ok {
		t.Fatalf("path %v", bgp.Triples[0].Path)
	}
	star := bgp.Triples[1].Path.(PathRepeat)
	if star.Min != 0 || !star.Unbounded {
		t.Fatalf("star %+v", star)
	}
	plus := bgp.Triples[2].Path.(PathRepeat)
	if plus.Min != 1 || !plus.Unbounded {
		t.Fatalf("plus %+v", plus)
	}
	opt := bgp.Triples[3].Path.(PathRepeat)
	if opt.Min != 0 || opt.Unbounded {
		t.Fatalf("opt %+v", opt)
	}
}

func TestParseGroupByHavingOrder(t *testing.T) {
	q := parseQ(t, `
PREFIX ex: <http://ex/>
SELECT ?dept (AVG(?sal) AS ?avg) WHERE { ?e ex:dept ?dept ; ex:sal ?sal }
GROUP BY ?dept
HAVING (AVG(?sal) > 1000)
ORDER BY DESC(?avg) LIMIT 5 OFFSET 2`)
	if len(q.GroupBy) != 1 || len(q.Having) != 1 || len(q.OrderBy) != 1 {
		t.Fatalf("%+v", q)
	}
	if !q.OrderBy[0].Desc || q.Limit != 5 || q.Offset != 2 {
		t.Fatalf("%+v", q)
	}
	if q.Items[1].Var != "avg" {
		t.Fatalf("%+v", q.Items)
	}
	agg, ok := q.Items[1].Expr.(EAgg)
	if !ok || agg.Func != "AVG" {
		t.Fatalf("%+v", q.Items[1].Expr)
	}
}

func TestParseAsk(t *testing.T) {
	q := parseQ(t, `ASK { ?s ?p ?o }`)
	if q.Form != FormAsk {
		t.Fatalf("form %v", q.Form)
	}
}

func TestParseConstruct(t *testing.T) {
	q := parseQ(t, `
PREFIX ex: <http://ex/>
CONSTRUCT { ?x ex:knows ?y } WHERE { ?y ex:knows ?x }`)
	if q.Form != FormConstruct || len(q.ConstructTemplate) != 1 {
		t.Fatalf("%+v", q)
	}
}

func TestParseDescribe(t *testing.T) {
	q := parseQ(t, `PREFIX ex: <http://ex/> DESCRIBE ex:thing`)
	if q.Form != FormDescribe || len(q.DescribeTerms) != 1 {
		t.Fatalf("%+v", q)
	}
}

func TestParseFromClauses(t *testing.T) {
	q := parseQ(t, `
SELECT ?s FROM <http://ex/g1> FROM NAMED <http://ex/g2> WHERE { ?s ?p ?o }`)
	if len(q.From) != 1 || len(q.FromNamed) != 1 {
		t.Fatalf("%+v", q)
	}
}

func TestParseGraphClause(t *testing.T) {
	q := parseQ(t, `SELECT ?s WHERE { GRAPH ?g { ?s ?p ?o } GRAPH <http://ex/g> { ?s ?p2 ?o2 } }`)
	gc1 := q.Where.Elems[0].(GraphClause)
	if gc1.Var != "g" {
		t.Fatalf("%+v", gc1)
	}
	gc2 := q.Where.Elems[1].(GraphClause)
	if gc2.Name != rdf.IRI("http://ex/g") {
		t.Fatalf("%+v", gc2)
	}
}

func TestParseValues(t *testing.T) {
	q := parseQ(t, `
SELECT ?x WHERE { VALUES ?x { 1 2 3 } VALUES (?a ?b) { (1 2) (UNDEF "x") } }`)
	v1 := q.Where.Elems[0].(InlineData)
	if len(v1.Rows) != 3 {
		t.Fatalf("%+v", v1)
	}
	v2 := q.Where.Elems[1].(InlineData)
	if len(v2.Vars) != 2 || v2.Rows[1][0] != nil {
		t.Fatalf("%+v", v2)
	}
}

func TestParseArrayDeref(t *testing.T) {
	q := parseQ(t, `
PREFIX ex: <http://ex/>
SELECT (?a[2,3] AS ?elem) (?a[1:10] AS ?slice) (?a[1:2:9] AS ?strided) (?a[:,2] AS ?col)
WHERE { ?s ex:data ?a }`)
	e := q.Items[0].Expr.(ESubscript)
	if len(e.Subs) != 2 || !e.Subs[0].Single {
		t.Fatalf("%+v", e)
	}
	sl := q.Items[1].Expr.(ESubscript)
	if sl.Subs[0].Single || sl.Subs[0].Lo == nil || sl.Subs[0].Hi == nil || sl.Subs[0].Step != nil {
		t.Fatalf("%+v", sl.Subs[0])
	}
	st := q.Items[2].Expr.(ESubscript)
	if st.Subs[0].Step == nil {
		t.Fatalf("%+v", st.Subs[0])
	}
	col := q.Items[3].Expr.(ESubscript)
	if col.Subs[0].Lo != nil || col.Subs[0].Hi != nil || col.Subs[0].Single {
		t.Fatalf("%+v", col.Subs[0])
	}
	if !col.Subs[1].Single {
		t.Fatalf("%+v", col.Subs[1])
	}
}

func TestParseArrayExprArithmetic(t *testing.T) {
	q := parseQ(t, `
PREFIX ex: <http://ex/>
SELECT (asum(?a * 2 + ?b) AS ?v) WHERE { ?s ex:a ?a ; ex:b ?b }`)
	call, ok := q.Items[0].Expr.(ECall)
	if !ok || call.Name != "asum" {
		t.Fatalf("%+v", q.Items[0].Expr)
	}
}

func TestParseFilterExists(t *testing.T) {
	q := parseQ(t, `
PREFIX ex: <http://ex/>
SELECT ?x WHERE {
  ?x a ex:T .
  FILTER ( EXISTS { ?x ex:home ?h } && NOT EXISTS { ?x ex:mbox ?m } )
}`)
	f := q.Where.Elems[1].(Filter)
	bin := f.Cond.(EBin)
	if bin.Op != "&&" {
		t.Fatalf("%+v", bin)
	}
	if ex := bin.L.(EExists); ex.Not {
		t.Fatalf("%+v", ex)
	}
	if ex := bin.R.(EExists); !ex.Not {
		t.Fatalf("%+v", ex)
	}
}

func TestParseInNotIn(t *testing.T) {
	q := parseQ(t, `SELECT ?x WHERE { ?x ?p ?v FILTER (?v IN (1, 2, 3)) FILTER (?v NOT IN (4)) }`)
	in := q.Where.Elems[1].(Filter).Cond.(EIn)
	if in.Not || len(in.List) != 3 {
		t.Fatalf("%+v", in)
	}
	nin := q.Where.Elems[2].(Filter).Cond.(EIn)
	if !nin.Not {
		t.Fatalf("%+v", nin)
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	q := parseQ(t, `SELECT (1 + 2 * 3 AS ?v) WHERE { }`)
	e := q.Items[0].Expr.(EBin)
	if e.Op != "+" {
		t.Fatalf("top op %q", e.Op)
	}
	if r := e.R.(EBin); r.Op != "*" {
		t.Fatalf("inner op %q", r.Op)
	}
}

func TestParseCollectionsInPatterns(t *testing.T) {
	q := parseQ(t, `PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:p (1 2) }`)
	bgp := firstBGP(t, q.Where)
	// 1 root + 2 cells x 2 triples = 5.
	if len(bgp.Triples) != 5 {
		t.Fatalf("triples %d", len(bgp.Triples))
	}
}

func TestParseBlankPropertyList(t *testing.T) {
	q := parseQ(t, `PREFIX ex: <http://ex/> SELECT ?n WHERE { [] ex:name ?n ; ex:knows [ ex:name "B" ] }`)
	bgp := firstBGP(t, q.Where)
	if len(bgp.Triples) != 3 {
		t.Fatalf("triples %d", len(bgp.Triples))
	}
}

func TestParseMinus(t *testing.T) {
	q := parseQ(t, `PREFIX ex: <http://ex/> SELECT ?x WHERE { ?x a ex:T MINUS { ?x ex:bad true } }`)
	if _, ok := q.Where.Elems[1].(Minus); !ok {
		t.Fatalf("%+v", q.Where.Elems)
	}
}

func TestParseInsertData(t *testing.T) {
	st, err := ParseStatement(`
PREFIX ex: <http://ex/>
INSERT DATA { ex:s ex:p 1 ; ex:q "x" . ex:t ex:p 2 }`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertData)
	if len(ins.Triples) != 3 {
		t.Fatalf("%+v", ins.Triples)
	}
}

func TestParseInsertDataGraph(t *testing.T) {
	st, err := ParseStatement(`
PREFIX ex: <http://ex/>
INSERT DATA { GRAPH ex:g { ex:s ex:p 1 } }`)
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertData)
	if ins.Graph != rdf.IRI("http://ex/g") || len(ins.Triples) != 1 {
		t.Fatalf("%+v", ins)
	}
}

func TestParseDeleteInsertWhere(t *testing.T) {
	st, err := ParseStatement(`
PREFIX ex: <http://ex/>
DELETE { ?s ex:old ?v } INSERT { ?s ex:new ?v } WHERE { ?s ex:old ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	m := st.(*Modify)
	if len(m.DeleteTpl) != 1 || len(m.InsertTpl) != 1 || m.Where == nil {
		t.Fatalf("%+v", m)
	}
}

func TestParseDeleteWhere(t *testing.T) {
	st, err := ParseStatement(`PREFIX ex: <http://ex/> DELETE WHERE { ?s ex:p ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	m := st.(*Modify)
	if len(m.DeleteTpl) != 1 {
		t.Fatalf("%+v", m)
	}
}

func TestParseLoadClear(t *testing.T) {
	st, err := ParseStatement(`LOAD <data/file.ttl> INTO GRAPH <http://ex/g>`)
	if err != nil {
		t.Fatal(err)
	}
	ld := st.(*Load)
	if ld.Source != "data/file.ttl" || ld.Graph != rdf.IRI("http://ex/g") {
		t.Fatalf("%+v", ld)
	}
	st2, err := ParseStatement(`CLEAR GRAPH <http://ex/g>`)
	if err != nil {
		t.Fatal(err)
	}
	if st2.(*Clear).Graph != rdf.IRI("http://ex/g") {
		t.Fatalf("%+v", st2)
	}
}

func TestParseDefineFunctionExpr(t *testing.T) {
	st, err := ParseStatement(`
PREFIX ex: <http://ex/>
DEFINE FUNCTION ex:scale(?x, ?f) AS ?x * ?f`)
	if err != nil {
		t.Fatal(err)
	}
	def := st.(*DefineFunction)
	if def.Name != "http://ex/scale" || len(def.Params) != 2 || def.Expr == nil {
		t.Fatalf("%+v", def)
	}
}

func TestParseDefineFunctionQuery(t *testing.T) {
	st, err := ParseStatement(`
PREFIX ex: <http://ex/>
DEFINE FUNCTION ex:friends(?p) AS SELECT ?f WHERE { ?p ex:knows ?f }`)
	if err != nil {
		t.Fatal(err)
	}
	def := st.(*DefineFunction)
	if def.Body == nil || len(def.Params) != 1 {
		t.Fatalf("%+v", def)
	}
}

func TestParseDefineAggregate(t *testing.T) {
	st, err := ParseStatement(`DEFINE AGGREGATE myspread(?b) AS max(?b) - min(?b)`)
	if err != nil {
		t.Fatal(err)
	}
	def := st.(*DefineAggregate)
	if def.Name != "myspread" || def.Param != "b" {
		t.Fatalf("%+v", def)
	}
}

func TestParseClosureHole(t *testing.T) {
	q := parseQ(t, `
PREFIX ex: <http://ex/>
SELECT (map(ex:scale(_, ?f), ?a) AS ?scaled) WHERE { ?s ex:a ?a ; ex:f ?f }`)
	call := q.Items[0].Expr.(ECall)
	if call.Name != "map" {
		t.Fatalf("%+v", call)
	}
	inner := call.Args[0].(ECall)
	if _, ok := inner.Args[0].(EHole); !ok {
		t.Fatalf("%+v", inner.Args[0])
	}
}

func TestParseMultipleStatements(t *testing.T) {
	stmts, err := ParseAll(`
PREFIX ex: <http://ex/>
INSERT DATA { ex:s ex:p 1 } ;
SELECT ?v WHERE { ex:s ex:p ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("%d statements", len(stmts))
	}
}

func TestParseGroupConcat(t *testing.T) {
	q := parseQ(t, `SELECT (GROUP_CONCAT(?n ; SEPARATOR = ", ") AS ?all) WHERE { ?x ?p ?n } GROUP BY ?p`)
	agg := q.Items[0].Expr.(EAgg)
	if agg.Func != "GROUP_CONCAT" || agg.Separator != ", " {
		t.Fatalf("%+v", agg)
	}
}

func TestParseCountStar(t *testing.T) {
	q := parseQ(t, `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`)
	agg := q.Items[0].Expr.(EAgg)
	if agg.Func != "COUNT" || agg.Arg != nil {
		t.Fatalf("%+v", agg)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT WHERE { ?s ?p ?o }`,
		`SELECT ?x { ?s ?p }`,
		`SELECT ?x WHERE { ?s ?p ?o `,
		`SELECT ?x WHERE { ?s ex:p ?o }`, // undefined prefix
		`SELECT ?x WHERE { FILTER }`,
		`SELECT (1 + AS ?v) WHERE {}`,
		`INSERT DATA { ?s <http://p> 1 }`, // var in data
		`DEFINE FUNCTION f() AS`,
		`SELECT ?x WHERE { ?s ?p ?o } LIMIT abc`,
		`SELECT ?x WHERE { ?s ?p ?o } GROUP BY`,
		`ASK`,
		`FOO BAR`,
		`SELECT ?a[1] WHERE { ?s ?p ?a }`, // deref needs AS form
	}
	for i, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Fatalf("case %d: expected error for %q", i, src)
		}
	}
}

func TestHasAggregateAndExprVars(t *testing.T) {
	q := parseQ(t, `SELECT (SUM(?a) + 1 AS ?s) WHERE { ?x ?p ?a }`)
	if !HasAggregate(q.Items[0].Expr) {
		t.Fatal("aggregate not detected")
	}
	vars := map[string]bool{}
	ExprVars(q.Items[0].Expr, vars)
	if !vars["a"] {
		t.Fatalf("%v", vars)
	}
}

func TestParseNegativeNumberLiteralInPattern(t *testing.T) {
	q := parseQ(t, `PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:v -5 }`)
	tp := firstBGP(t, q.Where).Triples[0]
	if tp.O.Term != rdf.Integer(-5) {
		t.Fatalf("%v", tp.O)
	}
}

func TestParseTypedLiteralInPattern(t *testing.T) {
	q := parseQ(t, `SELECT ?s WHERE { ?s <http://ex/v> "42"^^<http://www.w3.org/2001/XMLSchema#integer> }`)
	tp := firstBGP(t, q.Where).Triples[0]
	if tp.O.Term != rdf.Integer(42) {
		t.Fatalf("%v", tp.O)
	}
}
