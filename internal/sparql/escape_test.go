package sparql

import (
	"strings"
	"testing"

	"scisparql/internal/rdf"
)

// TestStringUCHAREscapes: \uXXXX/\UXXXXXXXX (and the \b/\f ECHARs)
// in query string literals decode to the designated characters.
func TestStringUCHAREscapes(t *testing.T) {
	q, err := ParseQuery(`SELECT ?s WHERE { ?s <http://ex/p> "café \U0001F600 \b\f" }`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text := renderedLiteral(t, q)
	if text != "café \U0001F600 \b\f" {
		t.Fatalf("escapes not decoded: %q", text)
	}
}

// TestIRIUCHAREscapes: UCHAR escapes inside <...> IRIREFs decode too.
func TestIRIUCHAREscapes(t *testing.T) {
	if _, err := ParseQuery(`SELECT ?s WHERE { ?s <http://ex/café> ?o }`); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

// TestBadEscapes: malformed escapes are errors carrying position and a
// reason, never silently mangled input.
func TestBadEscapes(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"bad hex", `SELECT ?s WHERE { ?s ?p "\u12G4" }`, "not a hex digit"},
		{"surrogate", `SELECT ?s WHERE { ?s ?p "\uDEAD" }`, "surrogate"},
		{"out of range", `SELECT ?s WHERE { ?s ?p "\U7FFFFFFF" }`, "beyond U+10FFFF"},
		{"iri bad escape", `SELECT ?s WHERE { ?s <http://ex/a\qb> ?o }`, "only \\u and \\U"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseQuery(c.src)
			if err == nil {
				t.Fatalf("parse accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error %q lacks position info", err)
			}
		})
	}
}

// renderedLiteral digs the first string-literal object out of the
// query's WHERE pattern.
func renderedLiteral(t *testing.T, q *Query) string {
	t.Helper()
	for _, el := range q.Where.Elems {
		bgp, ok := el.(BGP)
		if !ok {
			continue
		}
		for _, tp := range bgp.Triples {
			if s, ok := tp.O.Term.(rdf.String); ok {
				return s.Val
			}
		}
	}
	t.Fatal("no string literal found in parsed query")
	return ""
}
