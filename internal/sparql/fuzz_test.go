package sparql

import "testing"

// FuzzParseQuery asserts the query parser never panics: arbitrary
// input must come back as a parse tree or an error, even when the
// server-side panic trap would contain a crash — parsers face raw
// network input and get no second chance.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`SELECT * WHERE { ?s ?p ?o }`,
		`PREFIX ex: <http://ex/> SELECT ?v WHERE { ex:s ex:p ?v . FILTER(?v > 3) }`,
		`SELECT (asum(?a[1,:]) AS ?row) WHERE { ?m <http://ex/data> ?a }`,
		`SELECT ?n (COUNT(?f) AS ?c) WHERE { ?p <http://ex/knows> ?f ; <http://ex/name> ?n }
		 GROUP BY ?n HAVING (COUNT(?f) > 1) ORDER BY DESC(?c) LIMIT 3`,
		`ASK { ?s a <http://ex/Person> }`,
		`CONSTRUCT { ?s <http://ex/q> ?o } WHERE { ?s <http://ex/p> ?o }`,
		`SELECT ?x WHERE { ?x <http://ex/knows>+ ?y . FILTER NOT EXISTS { ?y a <http://ex/Robot> } }`,
		`SELECT ?s WHERE { { SELECT ?s WHERE { ?s ?p ?o } LIMIT 2 } UNION { ?s a ?c } }`,
		`SELECT (abs(_) AS ?f) WHERE { ?s ?p ?o }`,
		`SELECT * WHERE { VALUES (?x ?y) { (1 2) (3 4) } OPTIONAL { ?x <http://ex/p> ?z } }`,
		`INSERT DATA { <http://ex/s> <http://ex/p> 1 , 2 }`,
		`DELETE { ?s ?p ?o } WHERE { ?s ?p ?o . FILTER(?o < 0) }`,
		`DEFINE FUNCTION ex:sq(?x) AS ?x * ?x`,
		`SELECT ?v WHERE { GRAPH <http://ex/g> { ?s ?p ?v } }`,
		"SELECT * WHERE { ?s ?p \"litt\\u00e9ral\"@fr }",
		`SELECT * WHERE { ?s ?p '''multi
		line''' }`,
		`SELECT * WHERE { ?a (<http://ex/p>|^<http://ex/q>)* ?b }`,
		`SELECT * WHERE { ?s ?p ?a . FILTER(?a[2:4, ::2] > 0) }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Errors are expected; panics are the bug under test. Both
		// entry points must be total.
		_, _ = ParseQuery(src)
		_, _ = ParseAll(src)
	})
}
