package sparql

import (
	"scisparql/internal/rdf"
)

func intTerm(v int64) rdf.Term     { return rdf.Integer(v) }
func floatTerm(v float64) rdf.Term { return rdf.Float(v) }
func boolTerm(v bool) rdf.Term     { return rdf.Boolean(v) }

// insertStmt parses INSERT DATA { ... } or INSERT { tpl } WHERE { ... }.
func (p *Parser) insertStmt() (Statement, error) {
	if err := p.expectWord("INSERT"); err != nil {
		return nil, err
	}
	if p.acceptWord("DATA") {
		graph, triples, err := p.quadData()
		if err != nil {
			return nil, err
		}
		return &InsertData{Prefixes: p.snapshotPrefixes(), Graph: graph, Triples: triples}, nil
	}
	tpl, err := p.templateBlock()
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("WHERE"); err != nil {
		return nil, err
	}
	g, err := p.groupGraphPattern()
	if err != nil {
		return nil, err
	}
	return &Modify{Prefixes: p.snapshotPrefixes(), InsertTpl: tpl, Where: g}, nil
}

// deleteStmt parses DELETE DATA, DELETE WHERE, or DELETE {tpl}
// [INSERT {tpl}] WHERE {...}.
func (p *Parser) deleteStmt() (Statement, error) {
	if err := p.expectWord("DELETE"); err != nil {
		return nil, err
	}
	if p.acceptWord("DATA") {
		graph, triples, err := p.quadData()
		if err != nil {
			return nil, err
		}
		return &DeleteData{Prefixes: p.snapshotPrefixes(), Graph: graph, Triples: triples}, nil
	}
	if p.acceptWord("WHERE") {
		// DELETE WHERE { pattern }: the pattern doubles as template.
		g, err := p.groupGraphPattern()
		if err != nil {
			return nil, err
		}
		tpl, err := groupAsTemplate(g)
		if err != nil {
			return nil, err
		}
		return &Modify{Prefixes: p.snapshotPrefixes(), DeleteTpl: tpl, Where: g}, nil
	}
	tpl, err := p.templateBlock()
	if err != nil {
		return nil, err
	}
	m := &Modify{Prefixes: p.snapshotPrefixes(), DeleteTpl: tpl}
	if p.acceptWord("INSERT") {
		ins, err := p.templateBlock()
		if err != nil {
			return nil, err
		}
		m.InsertTpl = ins
	}
	if err := p.expectWord("WHERE"); err != nil {
		return nil, err
	}
	g, err := p.groupGraphPattern()
	if err != nil {
		return nil, err
	}
	m.Where = g
	return m, nil
}

// withModify parses WITH <g> DELETE/INSERT ... WHERE ...
func (p *Parser) withModify() (Statement, error) {
	if err := p.expectWord("WITH"); err != nil {
		return nil, err
	}
	graph, err := p.iriRef()
	if err != nil {
		return nil, err
	}
	var st Statement
	switch {
	case p.tok.isWord("DELETE"):
		st, err = p.deleteStmt()
	case p.tok.isWord("INSERT"):
		st, err = p.insertStmt()
	default:
		return nil, p.errorf("expected DELETE or INSERT after WITH")
	}
	if err != nil {
		return nil, err
	}
	m, ok := st.(*Modify)
	if !ok {
		return nil, p.errorf("WITH requires a template update, not DATA")
	}
	m.Graph = graph
	return m, nil
}

// groupAsTemplate extracts the plain triple patterns of a group for
// DELETE WHERE.
func groupAsTemplate(g *Group) ([]TriplePattern, error) {
	var out []TriplePattern
	for _, el := range g.Elems {
		bgp, ok := el.(BGP)
		if !ok {
			return nil, errNonTemplate
		}
		for _, tp := range bgp.Triples {
			switch tp.Path.(type) {
			case PathIRI, PathVar:
			default:
				return nil, errNonTemplate
			}
			out = append(out, tp)
		}
	}
	return out, nil
}

var errNonTemplate = fmtError("sciSPARQL: DELETE WHERE pattern must contain only plain triples")

type fmtError string

func (e fmtError) Error() string { return string(e) }

// quadData parses { triples } or { GRAPH <g> { triples } } for
// INSERT/DELETE DATA.
func (p *Parser) quadData() (rdf.IRI, []TriplePattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return "", nil, err
	}
	var graph rdf.IRI
	var triples []TriplePattern
	if p.acceptWord("GRAPH") {
		g, err := p.iriRef()
		if err != nil {
			return "", nil, err
		}
		graph = g
		inner, err := p.templateBlock()
		if err != nil {
			return "", nil, err
		}
		triples = inner
	} else {
		bgp := &BGP{}
		for !p.tok.isPunct("}") {
			if p.tok.kind == tEOF {
				return "", nil, p.errorf("unterminated data block")
			}
			if p.tok.isPunct(".") {
				if err := p.advance(); err != nil {
					return "", nil, err
				}
				continue
			}
			if err := p.triplesBlock(bgp); err != nil {
				return "", nil, err
			}
		}
		triples = bgp.Triples
	}
	// Close the data block (for the GRAPH form, templateBlock consumed
	// the inner '}' and this is the outer one).
	if err := p.expectPunct("}"); err != nil {
		return "", nil, err
	}
	for _, tp := range triples {
		if tp.S.IsVar() || tp.O.IsVar() {
			return "", nil, p.errorf("variables are not allowed in DATA blocks")
		}
		if _, ok := tp.Path.(PathIRI); !ok {
			return "", nil, p.errorf("predicates in DATA blocks must be IRIs")
		}
	}
	return graph, triples, nil
}

// loadStmt parses LOAD <source> [INTO GRAPH <g>].
func (p *Parser) loadStmt() (Statement, error) {
	if err := p.expectWord("LOAD"); err != nil {
		return nil, err
	}
	if p.tok.kind != tIRI && p.tok.kind != tString {
		return nil, p.errorf("expected file or IRI after LOAD, found %s", p.tok)
	}
	src := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	ld := &Load{Source: src}
	if p.acceptWord("INTO") {
		if err := p.expectWord("GRAPH"); err != nil {
			return nil, err
		}
		g, err := p.iriRef()
		if err != nil {
			return nil, err
		}
		ld.Graph = g
	}
	return ld, nil
}

// clearStmt parses CLEAR DEFAULT | CLEAR GRAPH <g>.
func (p *Parser) clearStmt() (Statement, error) {
	if err := p.expectWord("CLEAR"); err != nil {
		return nil, err
	}
	if p.acceptWord("DEFAULT") {
		return &Clear{Default: true}, nil
	}
	if err := p.expectWord("GRAPH"); err != nil {
		return nil, err
	}
	g, err := p.iriRef()
	if err != nil {
		return nil, err
	}
	return &Clear{Graph: g}, nil
}

// defineStmt parses the SciSPARQL definitions (§4.2):
//
//	DEFINE FUNCTION name(?p1 ?p2) AS expr-or-select
//	DEFINE AGGREGATE name(?b) AS expr
func (p *Parser) defineStmt() (Statement, error) {
	if err := p.expectWord("DEFINE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptWord("FUNCTION"):
		name, err := p.functionName()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var params []string
		for p.tok.kind == tVar {
			params = append(params, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectWord("AS"); err != nil {
			return nil, err
		}
		def := &DefineFunction{Prefixes: p.snapshotPrefixes(), Name: name, Params: params}
		if p.tok.isWord("SELECT") {
			q, err := p.query()
			if err != nil {
				return nil, err
			}
			def.Body = q
		} else {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			def.Expr = e
		}
		return def, nil
	case p.acceptWord("AGGREGATE"):
		name, err := p.functionName()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.tok.kind != tVar {
			return nil, p.errorf("expected aggregate parameter variable")
		}
		param := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectWord("AS"); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &DefineAggregate{Prefixes: p.snapshotPrefixes(), Name: name, Param: param, Expr: e}, nil
	default:
		return nil, p.errorf("expected FUNCTION or AGGREGATE after DEFINE")
	}
}

// functionName accepts an IRI, prefixed name, or bare identifier.
func (p *Parser) functionName() (string, error) {
	switch p.tok.kind {
	case tIRI:
		name := string(p.resolveIRI(p.tok.text))
		return name, p.advance()
	case tPName:
		iri, err := p.expandPName(p.tok.text)
		if err != nil {
			return "", err
		}
		return string(iri), p.advance()
	case tWord:
		name := p.tok.text
		return name, p.advance()
	default:
		return "", p.errorf("expected function name, found %s", p.tok)
	}
}
