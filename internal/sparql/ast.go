// Package sparql implements the Scientific SPARQL (SciSPARQL) query
// language: a superset of W3C SPARQL 1.1 (dissertation chapter 3)
// extended with array dereference syntax, array expressions,
// parameterized functional views, lexical closures and second-order
// functions (chapter 4), plus the SPARQL Update statements SSDM
// supports.
//
// The package contains the abstract syntax tree and a recursive-
// descent parser; translation to executable algebra lives in package
// engine.
package sparql

import (
	"fmt"
	"strings"

	"scisparql/internal/rdf"
)

// Form distinguishes the query forms.
type Form uint8

const (
	FormSelect Form = iota
	FormAsk
	FormConstruct
	FormDescribe
)

// Query is a parsed SciSPARQL query.
type Query struct {
	Base     string
	Prefixes map[string]string

	Form     Form
	Distinct bool
	Reduced  bool
	Star     bool
	Items    []SelectItem // projection (empty with Star)

	ConstructTemplate []TriplePattern
	DescribeTerms     []Expression

	From      []rdf.IRI
	FromNamed []rdf.IRI

	Where *Group

	GroupBy []Expression
	Having  []Expression
	OrderBy []OrderCond
	Limit   int // -1 = none
	Offset  int
}

// SelectItem is one projection: a plain variable or (expr AS ?var).
type SelectItem struct {
	Var  string
	Expr Expression // nil for a plain variable
}

// OrderCond is one ORDER BY criterion.
type OrderCond struct {
	Expr Expression
	Desc bool
}

// Group is a group graph pattern: a conjunction of elements.
type Group struct {
	Elems []Element
}

// Element is any member of a group graph pattern.
type Element interface{ isElement() }

// BGP is a basic graph pattern: a conjunctive block of triple
// patterns.
type BGP struct {
	Triples []TriplePattern
}

// Optional is OPTIONAL { ... }.
type Optional struct {
	Group *Group
}

// Union is { A } UNION { B } UNION ...
type Union struct {
	Branches []*Group
}

// Minus is MINUS { ... }.
type Minus struct {
	Group *Group
}

// Filter is FILTER ( expr ).
type Filter struct {
	Cond Expression
}

// Bind is BIND ( expr AS ?var ).
type Bind struct {
	Expr Expression
	Var  string
}

// GraphClause is GRAPH <g> { ... } or GRAPH ?g { ... }.
type GraphClause struct {
	Name  rdf.Term // nil when Var is set
	Var   string
	Group *Group
}

// InlineData is a VALUES block.
type InlineData struct {
	Vars []string
	Rows [][]rdf.Term // nil entry = UNDEF
}

// SubGroup nests a group (braces inside braces).
type SubGroup struct {
	Group *Group
}

// SubSelect is a nested SELECT query inside a group graph pattern
// (SPARQL 1.1 subqueries): evaluated bottom-up, its projected
// variables join with the enclosing pattern.
type SubSelect struct {
	Query *Query
}

func (BGP) isElement()         {}
func (Optional) isElement()    {}
func (Union) isElement()       {}
func (Minus) isElement()       {}
func (Filter) isElement()      {}
func (Bind) isElement()        {}
func (GraphClause) isElement() {}
func (InlineData) isElement()  {}
func (SubGroup) isElement()    {}
func (SubSelect) isElement()   {}

// Node is a subject/object position in a triple pattern: a variable or
// a ground term.
type Node struct {
	Var  string   // set when the node is a variable
	Term rdf.Term // set when the node is ground
}

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Var != "" }

func (n Node) String() string {
	if n.IsVar() {
		return "?" + n.Var
	}
	if n.Term == nil {
		return "<nil>"
	}
	return n.Term.String()
}

// NewVarNode makes a variable node.
func NewVarNode(name string) Node { return Node{Var: name} }

// NewTermNode makes a ground node.
func NewTermNode(t rdf.Term) Node { return Node{Term: t} }

// TriplePattern is one triple pattern; the predicate position is a
// property path (a trivial path for a plain IRI, or a variable).
type TriplePattern struct {
	S    Node
	Path Path
	O    Node
}

// Path is a property path expression (§3.4).
type Path interface {
	isPath()
	String() string
}

// PathIRI is a single predicate IRI.
type PathIRI struct{ IRI rdf.IRI }

// PathVar is a variable in predicate position (not a W3C path, but
// plain SPARQL allows predicate variables).
type PathVar struct{ Name string }

// PathInverse is ^p.
type PathInverse struct{ P Path }

// PathSeq is p1 / p2.
type PathSeq struct{ L, R Path }

// PathAlt is p1 | p2.
type PathAlt struct{ L, R Path }

// PathRepeat is p*, p+ or p? depending on Min/Unbounded.
type PathRepeat struct {
	P         Path
	Min       int  // 0 for * and ?, 1 for +
	Unbounded bool // false only for ?
}

// PathNegated is a negated property set !iri or !(iri1|^iri2|...):
// it matches any edge whose predicate is not in the forward set
// (respectively, any reverse edge whose predicate is not in the
// inverse set).
type PathNegated struct {
	Fwd []rdf.IRI
	Inv []rdf.IRI
}

func (PathIRI) isPath()     {}
func (PathVar) isPath()     {}
func (PathInverse) isPath() {}
func (PathSeq) isPath()     {}
func (PathAlt) isPath()     {}
func (PathRepeat) isPath()  {}
func (PathNegated) isPath() {}

func (p PathIRI) String() string     { return p.IRI.String() }
func (p PathVar) String() string     { return "?" + p.Name }
func (p PathInverse) String() string { return "^" + p.P.String() }
func (p PathSeq) String() string     { return "(" + p.L.String() + "/" + p.R.String() + ")" }
func (p PathAlt) String() string     { return "(" + p.L.String() + "|" + p.R.String() + ")" }

func (p PathNegated) String() string {
	parts := make([]string, 0, len(p.Fwd)+len(p.Inv))
	for _, iri := range p.Fwd {
		parts = append(parts, iri.String())
	}
	for _, iri := range p.Inv {
		parts = append(parts, "^"+iri.String())
	}
	return "!(" + strings.Join(parts, "|") + ")"
}

func (p PathRepeat) String() string {
	suffix := "?"
	if p.Unbounded {
		if p.Min == 0 {
			suffix = "*"
		} else {
			suffix = "+"
		}
	}
	return p.P.String() + suffix
}

// Expression is a SciSPARQL expression.
type Expression interface {
	isExpr()
	String() string
}

// EVar references a variable.
type EVar struct{ Name string }

// ELit is a constant term.
type ELit struct{ Term rdf.Term }

// EBin is a binary operation: || && = != < <= > >= + - * / ^ MOD.
type EBin struct {
	Op   string
	L, R Expression
}

// EUn is unary ! or -.
type EUn struct {
	Op string
	E  Expression
}

// ECall is a function application: built-in, user-defined (DEFINE
// FUNCTION), or foreign. Placeholder arguments (EHole) turn the call
// into a lexical closure value (§4.3).
type ECall struct {
	Name string // lowercase builtin name or expanded IRI of a UDF
	Args []Expression
}

// EFuncRef is a bare reference to a named function, usable as a
// function-valued argument to second-order functions.
type EFuncRef struct{ Name string }

// EHole is the placeholder `_` inside a call, marking the parameter
// position a second-order function will supply (closure formation).
type EHole struct{}

// EAgg is an aggregate application inside SELECT/HAVING/ORDER BY.
type EAgg struct {
	Func      string // COUNT SUM MIN MAX AVG SAMPLE GROUP_CONCAT
	Distinct  bool
	Arg       Expression // nil for COUNT(*)
	Separator string     // GROUP_CONCAT
}

// EExists is EXISTS { ... } / NOT EXISTS { ... }.
type EExists struct {
	Not   bool
	Group *Group
}

// EIn is expr IN (list) / NOT IN.
type EIn struct {
	Not  bool
	E    Expression
	List []Expression
}

// ESubscript is the SciSPARQL array dereference ?a[...] (§4.1.1).
// Subscripts are 1-based, ranges inclusive, Matlab style:
// lo:hi or lo:step:hi; each bound may be omitted.
type ESubscript struct {
	Base Expression
	Subs []Subscript
}

// Subscript is one dimension's subscript.
type Subscript struct {
	Single bool
	Index  Expression // when Single
	Lo     Expression // nil = from start
	Hi     Expression // nil = to end
	Step   Expression // nil = 1
}

func (EVar) isExpr()       {}
func (ELit) isExpr()       {}
func (EBin) isExpr()       {}
func (EUn) isExpr()        {}
func (ECall) isExpr()      {}
func (EFuncRef) isExpr()   {}
func (EHole) isExpr()      {}
func (EAgg) isExpr()       {}
func (EExists) isExpr()    {}
func (EIn) isExpr()        {}
func (ESubscript) isExpr() {}

func (e EVar) String() string { return "?" + e.Name }
func (e ELit) String() string { return e.Term.String() }
func (e EBin) String() string { return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")" }
func (e EUn) String() string  { return e.Op + e.E.String() }

func (e ECall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

func (e EFuncRef) String() string { return e.Name }
func (EHole) String() string      { return "_" }

func (e EAgg) String() string {
	arg := "*"
	if e.Arg != nil {
		arg = e.Arg.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Func + "(" + d + arg + ")"
}

func (e EExists) String() string {
	if e.Not {
		return "NOT EXISTS {...}"
	}
	return "EXISTS {...}"
}

func (e EIn) String() string {
	op := "IN"
	if e.Not {
		op = "NOT IN"
	}
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.String()
	}
	return e.E.String() + " " + op + " (" + strings.Join(items, ", ") + ")"
}

func (e ESubscript) String() string {
	var sb strings.Builder
	sb.WriteString(e.Base.String())
	sb.WriteByte('[')
	for i, s := range e.Subs {
		if i > 0 {
			sb.WriteByte(',')
		}
		if s.Single {
			sb.WriteString(s.Index.String())
			continue
		}
		if s.Lo != nil {
			sb.WriteString(s.Lo.String())
		}
		sb.WriteByte(':')
		if s.Step != nil {
			sb.WriteString(s.Step.String())
			sb.WriteByte(':')
		}
		if s.Hi != nil {
			sb.WriteString(s.Hi.String())
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// --- Updates and directives ---

// Statement is a parsed SciSPARQL request: either a Query or an
// Update-family statement.
type Statement interface{ isStatement() }

func (*Query) isStatement() {}

// InsertData is INSERT DATA { triples }.
type InsertData struct {
	Prefixes map[string]string
	Graph    rdf.IRI // "" = default graph
	Triples  []TriplePattern
}

// DeleteData is DELETE DATA { triples }.
type DeleteData struct {
	Prefixes map[string]string
	Graph    rdf.IRI
	Triples  []TriplePattern
}

// Modify is DELETE {tpl} INSERT {tpl} WHERE { ... } (either template
// may be absent).
type Modify struct {
	Prefixes  map[string]string
	Graph     rdf.IRI
	DeleteTpl []TriplePattern
	InsertTpl []TriplePattern
	Where     *Group
}

// Load is LOAD <file-or-uri> [INTO GRAPH <g>].
type Load struct {
	Source string
	Graph  rdf.IRI
}

// Clear is CLEAR GRAPH <g> | CLEAR DEFAULT.
type Clear struct {
	Graph   rdf.IRI
	Default bool
}

// DefineFunction is the SciSPARQL functional-view definition (§4.2):
//
//	DEFINE FUNCTION ex:name(?a ?b) AS expression
//	DEFINE FUNCTION ex:name(?a) AS SELECT ?x WHERE { ... }
type DefineFunction struct {
	Prefixes map[string]string
	Name     string // expanded IRI or plain name
	Params   []string
	Expr     Expression // exclusive with Body
	Body     *Query
}

// DefineAggregate declares a user aggregate over a bag of values,
// implemented by a functional view mapped over the group (§4.2).
type DefineAggregate struct {
	Prefixes map[string]string
	Name     string
	Param    string
	Expr     Expression
}

func (*InsertData) isStatement()      {}
func (*DeleteData) isStatement()      {}
func (*Modify) isStatement()          {}
func (*Load) isStatement()            {}
func (*Clear) isStatement()           {}
func (*DefineFunction) isStatement()  {}
func (*DefineAggregate) isStatement() {}

// Vars collects the variables mentioned in a triple pattern.
func (tp TriplePattern) Vars() []string {
	var out []string
	if tp.S.IsVar() {
		out = append(out, tp.S.Var)
	}
	if pv, ok := tp.Path.(PathVar); ok {
		out = append(out, pv.Name)
	}
	if tp.O.IsVar() {
		out = append(out, tp.O.Var)
	}
	return out
}

func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s", tp.S, tp.Path, tp.O)
}

// ExprVars collects variable names referenced by an expression
// (excluding those scoped inside EXISTS groups).
func ExprVars(e Expression, out map[string]bool) {
	switch v := e.(type) {
	case EVar:
		out[v.Name] = true
	case EBin:
		ExprVars(v.L, out)
		ExprVars(v.R, out)
	case EUn:
		ExprVars(v.E, out)
	case ECall:
		for _, a := range v.Args {
			ExprVars(a, out)
		}
	case EAgg:
		if v.Arg != nil {
			ExprVars(v.Arg, out)
		}
	case EIn:
		ExprVars(v.E, out)
		for _, a := range v.List {
			ExprVars(a, out)
		}
	case ESubscript:
		ExprVars(v.Base, out)
		for _, s := range v.Subs {
			for _, b := range []Expression{s.Index, s.Lo, s.Hi, s.Step} {
				if b != nil {
					ExprVars(b, out)
				}
			}
		}
	}
}

// HasAggregate reports whether the expression contains an aggregate
// application.
func HasAggregate(e Expression) bool {
	found := false
	walkExpr(e, func(x Expression) {
		if _, ok := x.(EAgg); ok {
			found = true
		}
	})
	return found
}

func walkExpr(e Expression, f func(Expression)) {
	if e == nil {
		return
	}
	f(e)
	switch v := e.(type) {
	case EBin:
		walkExpr(v.L, f)
		walkExpr(v.R, f)
	case EUn:
		walkExpr(v.E, f)
	case ECall:
		for _, a := range v.Args {
			walkExpr(a, f)
		}
	case EAgg:
		walkExpr(v.Arg, f)
	case EIn:
		walkExpr(v.E, f)
		for _, a := range v.List {
			walkExpr(a, f)
		}
	case ESubscript:
		walkExpr(v.Base, f)
		for _, s := range v.Subs {
			walkExpr(s.Index, f)
			walkExpr(s.Lo, f)
			walkExpr(s.Hi, f)
			walkExpr(s.Step, f)
		}
	}
}
