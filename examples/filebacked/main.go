// File-backed arrays: the mediator scenario. Large numeric arrays stay
// in chunked binary files; the RDF graph holds lazy proxies linked by
// "N"^^ssdm:fileLink literals. Queries read only the chunks they
// touch — watch the back-end counters.
package main

import (
	"fmt"
	"log"
	"os"

	"scisparql"
	"scisparql/internal/storage/filestore"
)

func main() {
	dir, err := os.MkdirTemp("", "ssdm-filebacked")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fs, err := filestore.New(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate an instrument writing a large matrix straight to a file
	// (1000x1000 doubles, ~8 MB), outside any database.
	const n = 1000
	data := make([]float64, n*n)
	for i := range data {
		data[i] = float64(i % 1000)
	}
	big, err := scisparql.NewFloatArray(data, n, n)
	if err != nil {
		log.Fatal(err)
	}
	id, err := fs.Store(big, 4096/8) // 4 KB chunks
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %dx%d matrix to %s as array %d\n", n, n, dir, id)

	// The metadata document links the file; SSDM resolves the link into
	// a lazy proxy on load.
	db := scisparql.Open()
	db.AttachBackend(fs)
	ttl := fmt.Sprintf(`
@prefix ex:   <http://example.org/scan#> .
@prefix ssdm: <http://udbl.uu.se/ssdm#> .
ex:scan42 a ex:Scan ;
    ex:subject "sample 42" ;
    ex:matrix "%d"^^ssdm:fileLink .`, id)
	if err := db.LoadTurtle(ttl, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metadata graph: %d triples; no array data read yet (%d bytes read)\n\n",
		db.Dataset.Default.Size(), fs.BytesRead)

	// A point read touches one 4 KB chunk of the 8 MB file.
	res, err := db.Query(`
PREFIX ex: <http://example.org/scan#>
SELECT (?m[500,500] AS ?center) WHERE { ex:scan42 ex:matrix ?m }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("center element: %v  (file reads: %d calls, %d bytes)\n",
		res.Get(0, "center"), fs.ReadCalls, fs.BytesRead)

	// A row aggregate reads just that row's chunks, sequentially.
	before := fs.BytesRead
	res, err = db.Query(`
PREFIX ex: <http://example.org/scan#>
SELECT (asum(?m[250,:]) AS ?rowSum) WHERE { ex:scan42 ex:matrix ?m }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("row 250 sum:    %v  (additional bytes read: %d of %d total in file)\n",
		res.Get(0, "rowSum"), fs.BytesRead-before, n*n*8)
}
