// Data Cube: statistical data published with the W3C RDF Data Cube
// vocabulary is consolidated on load — the observations collapse into
// one dense array per measure plus per-dimension index dictionaries —
// after which array queries and the remaining metadata queries run
// against a much smaller graph.
package main

import (
	"fmt"
	"log"

	"scisparql"
)

// A small population cube: 3 years x 4 regions.
const cube = `
@prefix qb: <http://purl.org/linked-data/cube#> .
@prefix ex: <http://example.org/stats#> .

ex:dsd a qb:DataStructureDefinition ;
  qb:component [ qb:dimension ex:year ; qb:order 1 ] ,
               [ qb:dimension ex:region ; qb:order 2 ] ,
               [ qb:measure ex:population ] .

ex:pop a qb:DataSet ; qb:structure ex:dsd .

ex:o11 qb:dataSet ex:pop ; ex:year 2010 ; ex:region "east"  ; ex:population 120 .
ex:o12 qb:dataSet ex:pop ; ex:year 2010 ; ex:region "north" ; ex:population 100 .
ex:o13 qb:dataSet ex:pop ; ex:year 2010 ; ex:region "south" ; ex:population 200 .
ex:o14 qb:dataSet ex:pop ; ex:year 2010 ; ex:region "west"  ; ex:population 140 .
ex:o21 qb:dataSet ex:pop ; ex:year 2011 ; ex:region "east"  ; ex:population 125 .
ex:o22 qb:dataSet ex:pop ; ex:year 2011 ; ex:region "north" ; ex:population 105 .
ex:o23 qb:dataSet ex:pop ; ex:year 2011 ; ex:region "south" ; ex:population 210 .
ex:o24 qb:dataSet ex:pop ; ex:year 2011 ; ex:region "west"  ; ex:population 150 .
ex:o31 qb:dataSet ex:pop ; ex:year 2012 ; ex:region "east"  ; ex:population 130 .
ex:o32 qb:dataSet ex:pop ; ex:year 2012 ; ex:region "north" ; ex:population 112 .
ex:o33 qb:dataSet ex:pop ; ex:year 2012 ; ex:region "south" ; ex:population 220 .
ex:o34 qb:dataSet ex:pop ; ex:year 2012 ; ex:region "west"  ; ex:population 155 .
`

func main() {
	// Load twice to show the consolidation effect.
	raw := scisparql.OpenWith(func() scisparql.Options {
		o := scisparql.DefaultOptions()
		o.ConsolidateDataCubes = false
		return o
	}())
	if err := raw.LoadTurtle(cube, ""); err != nil {
		log.Fatal(err)
	}
	db := scisparql.Open()
	if err := db.LoadTurtle(cube, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw Data Cube graph: %d triples\n", raw.Dataset.Default.Size())
	fmt.Printf("consolidated graph:  %d triples\n\n", db.Dataset.Default.Size())

	// The measure is now a 3x4 array on the dataset node; dimensions are
	// 1-based in dictionary order (years ascending, regions sorted).
	res, err := db.Query(`
PREFIX ex: <http://example.org/stats#>
SELECT (adims(?pop) AS ?shape)
       (?pop[1,:] AS ?y2010)
       (asum(?pop[3,:]) AS ?total2012)
       (aavg(?pop[:,3]) AS ?southMean)
WHERE { ex:pop ex:population ?pop }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("shape:         ", res.Get(0, "shape"))
	fmt.Println("2010 row:      ", res.Get(0, "y2010"))
	fmt.Println("2012 total:    ", res.Get(0, "total2012"))
	fmt.Println("south mean:    ", res.Get(0, "southMean"))

	// The dimension dictionaries remain queryable metadata.
	dims, err := db.Query(`
PREFIX ex: <http://example.org/stats#>
PREFIX qb: <http://purl.org/linked-data/cube#>
PREFIX ssdm: <http://udbl.uu.se/ssdm#>
SELECT ?dim ?order WHERE {
  ex:pop ssdm:dimension ?d .
  ?d qb:dimension ?dim ; qb:order ?order .
} ORDER BY ?order`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndimensions:")
	for i := 0; i < dims.Len(); i++ {
		fmt.Printf("  %v (axis %v)\n", dims.Get(i, "dim"), dims.Get(i, "order"))
	}

	// Year-over-year growth via array arithmetic on slices.
	growth, err := db.Query(`
PREFIX ex: <http://example.org/stats#>
SELECT (?pop[3,:] - ?pop[1,:] AS ?delta) WHERE { ex:pop ex:population ?pop }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npopulation change 2010 -> 2012 per region:", growth.Get(0, "delta"))
}
