// Matlab-style workflow (the paper's chapter-7 scenario) over a real
// TCP connection: a numeric program publishes each run's result array
// together with Semantic-Web metadata to an SSDM server; a
// collaborator later finds results by metadata queries and receives
// only the server-computed slices — the traditional workflow is
// preserved, metadata handling is added around it.
package main

import (
	"fmt"
	"log"
	"math"

	"scisparql"
	"scisparql/internal/rdf"
	"scisparql/internal/server"
	"scisparql/internal/ssdmclient"
)

const ns = "http://example.org/flow#"

func main() {
	// Server side: SSDM with an in-process chunked array store.
	db := scisparql.Open()
	db.AttachBackend(scisparql.NewMemoryBackend())
	srv := server.New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("SSDM server on", addr)

	// Client side: the "Matlab" workflow.
	cl, err := ssdmclient.Connect(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		log.Fatal(err)
	}

	// Phase 1 — compute and publish: each run produces a damped
	// oscillation; the workflow stores the trajectory and annotates it.
	for run := 1; run <= 5; run++ {
		const n = 1000
		data := make([]float64, n)
		freq := float64(run)
		for t := 0; t < n; t++ {
			x := float64(t) / 100
			data[t] = math.Exp(-x/5) * math.Sin(freq*x)
		}
		a, err := scisparql.NewFloatArray(data, n)
		if err != nil {
			log.Fatal(err)
		}
		subject := rdf.IRI(fmt.Sprintf("%srun%d", ns, run))
		if err := cl.AddArrayTriple(subject, rdf.IRI(ns+"signal"), a); err != nil {
			log.Fatal(err)
		}
		meta := fmt.Sprintf(`PREFIX f: <%s>
INSERT DATA { <%s> a f:Run ; f:frequency %g ; f:author "alice" }`,
			ns, string(subject), freq)
		if _, err := cl.Update(meta); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published run %d (%d samples + metadata)\n", run, n)
	}

	// Phase 2 — a collaborator searches by metadata. The server
	// evaluates the array expressions; only scalars and the requested
	// head slice cross the wire.
	res, err := cl.Query(fmt.Sprintf(`PREFIX f: <%s>
SELECT ?run ?freq (amax(?s) AS ?peak) (?s[1:5] AS ?head)
WHERE {
  ?run a f:Run ; f:author "alice" ; f:frequency ?freq ; f:signal ?s
  FILTER (?freq >= 3)
} ORDER BY ?freq`, ns))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nruns with frequency >= 3: %d\n", res.Len())
	for i := 0; i < res.Len(); i++ {
		fmt.Printf("  %v  freq=%v  peak=%v  head=%v\n",
			res.Get(i, "run"), res.Get(i, "freq"), res.Get(i, "peak"), res.Get(i, "head"))
	}

	// Phase 3 — annotate a result after the fact, then find it by the
	// new annotation: the Semantic Web way of curating computations.
	if _, err := cl.Update(fmt.Sprintf(`PREFIX f: <%s>
INSERT DATA { <%srun4> f:tag "publication-figure-3" }`, ns, ns)); err != nil {
		log.Fatal(err)
	}
	tagged, err := cl.Query(fmt.Sprintf(`PREFIX f: <%s>
SELECT ?run (acount(?s) AS ?samples) WHERE { ?run f:tag "publication-figure-3" ; f:signal ?s }`, ns))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntagged for the paper: %v with %v samples\n",
		tagged.Get(0, "run"), tagged.Get(0, "samples"))
}
