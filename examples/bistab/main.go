// BISTAB: the computational-biology scenario of the paper's real-life
// evaluation. Stochastic simulations of a bistable chemical system are
// described by RDF metadata (parameter case, rate constants,
// realization number) while each trajectory is a 2xN array. The
// example generates the dataset, stores the trajectories in an
// embedded relational back-end (chunked BLOBs, SPD retrieval) and runs
// the four application queries.
package main

import (
	"fmt"
	"log"

	"scisparql"
	"scisparql/internal/bistab"
)

func main() {
	cfg := bistab.DefaultConfig()
	backend, err := scisparql.NewRelationalBackend(scisparql.StrategySPD)
	if err != nil {
		log.Fatal(err)
	}
	db, err := bistab.Generate(cfg, backend)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BISTAB dataset: %d parameter cases x %d realizations, %d-step trajectories\n",
		cfg.Cases, cfg.Realizations, cfg.Steps)
	fmt.Printf("metadata graph: %d triples; trajectories externalized to %s\n\n",
		db.Dataset.Default.Size(), backend.Name())

	for _, q := range bistab.Queries(cfg) {
		res, err := db.Query(q.Text)
		if err != nil {
			log.Fatalf("%s: %v", q.Name, err)
		}
		fmt.Printf("## %s -> %d rows\n", q.Name, res.Len())
		limit := res.Len()
		if limit > 4 {
			limit = 4
		}
		for i := 0; i < limit; i++ {
			for j, v := range res.Vars {
				fmt.Printf("  ?%s=%v", v, res.Rows[i][j])
			}
			fmt.Println()
		}
		if res.Len() > limit {
			fmt.Printf("  ... (%d more)\n", res.Len()-limit)
		}
		fmt.Println()
	}

	// The queries above pulled only the chunks they needed; show the
	// relational store's counters as evidence of lazy retrieval.
	st := backend.DB.StatsSnapshot()
	fmt.Printf("relational back-end: %d SQL statements, %.1f MB transferred\n",
		st.Statements, float64(st.BytesReturned)/(1<<20))
}
