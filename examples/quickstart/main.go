// Quickstart: load an RDF-with-Arrays dataset from Turtle (nested
// collections are consolidated into arrays automatically), then query
// data and metadata together with SciSPARQL — array subscripts, array
// aggregates, user-defined functions and second-order functions.
package main

import (
	"fmt"
	"log"

	"scisparql"
)

const dataset = `
@prefix ex:   <http://example.org/lab#> .
@prefix xsd:  <http://www.w3.org/2001/XMLSchema#> .

# Two measurement series with metadata; the nested collections become
# 2-D arrays on load.
ex:exp1 a ex:Experiment ;
    ex:instrument "spectrometer A" ;
    ex:temperature 293.5 ;
    ex:readings ((1.0 2.0 3.0) (4.0 5.0 6.0)) .

ex:exp2 a ex:Experiment ;
    ex:instrument "spectrometer B" ;
    ex:temperature 310.0 ;
    ex:readings ((10.0 20.0 30.0) (40.0 50.0 60.0)) .
`

func main() {
	db := scisparql.Open()
	if err := db.LoadTurtle(dataset, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded: %d triples (arrays consolidated)\n\n", db.Dataset.Default.Size())

	run := func(title, q string) {
		fmt.Println("##", title)
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		for i, v := range res.Vars {
			fmt.Printf("?%s", v)
			if i < len(res.Vars)-1 {
				fmt.Print("\t")
			}
		}
		fmt.Println()
		for _, row := range res.Rows {
			for i, cell := range row {
				if cell == nil {
					fmt.Print("-")
				} else {
					fmt.Print(cell)
				}
				if i < len(row)-1 {
					fmt.Print("\t")
				}
			}
			fmt.Println()
		}
		fmt.Println()
	}

	// Metadata and array data in one query: element access is 1-based,
	// Matlab style.
	run("element and slice access", `
PREFIX ex: <http://example.org/lab#>
SELECT ?inst (?r[2,3] AS ?corner) (asum(?r[1,:]) AS ?row1)
WHERE { ?e ex:instrument ?inst ; ex:readings ?r }
ORDER BY ?inst`)

	// Filter by a computation over the array, combined with a metadata
	// condition.
	run("array aggregate filter", `
PREFIX ex: <http://example.org/lab#>
SELECT ?inst (aavg(?r) AS ?mean)
WHERE {
  ?e ex:instrument ?inst ; ex:temperature ?t ; ex:readings ?r
  FILTER (?t > 300 && amax(?r) > 50)
}`)

	// Define a functional view and a scaling function; use the latter
	// as a lexical closure inside the second-order map().
	if _, err := db.Execute(`
PREFIX ex: <http://example.org/lab#>
DEFINE FUNCTION ex:kelvin(?c) AS ?c + 273.15 ;
DEFINE FUNCTION ex:scale(?x, ?f) AS ?x * ?f`); err != nil {
		log.Fatal(err)
	}
	run("user-defined functions and map() with a closure", `
PREFIX ex: <http://example.org/lab#>
SELECT ?inst (ex:kelvin(20) AS ?roomK) (asum(map(ex:scale(_, 0.5), ?r[1,:])) AS ?halfRow)
WHERE { ?e ex:instrument ?inst ; ex:readings ?r }
ORDER BY ?inst`)

	// Updates work too.
	if _, err := db.Execute(`
PREFIX ex: <http://example.org/lab#>
INSERT DATA { ex:exp1 ex:operator "Andrej" }`); err != nil {
		log.Fatal(err)
	}
	run("after an update", `
PREFIX ex: <http://example.org/lab#>
SELECT ?op WHERE { ex:exp1 ex:operator ?op }`)
}
