// Relational mediation: an existing relational database (here, a
// Chelonia-style experiment log: tasks x named variables) is exposed
// as RDF through a declarative mapping — rows become subjects, columns
// become properties — and immediately becomes queryable with SciSPARQL
// together with array data from other sources.
package main

import (
	"fmt"
	"log"

	"scisparql"
	"scisparql/internal/mediator"
	"scisparql/internal/rdf"
	"scisparql/internal/relstore"
)

func main() {
	// An existing relational database owned by some other system.
	legacy := relstore.NewDatabase()
	stmts := []string{
		`CREATE TABLE tasks (id INT, k_1 DOUBLE, k_a DOUBLE, realization INT, outcome TEXT, PRIMARY KEY (id))`,
		`INSERT INTO tasks VALUES (1, 32.159, 79.279, 1, 'converged')`,
		`INSERT INTO tasks VALUES (2, 19.151, 39.044, 1, 'converged')`,
		`INSERT INTO tasks VALUES (3, 32.159, 79.279, 2, 'diverged')`,
		`INSERT INTO tasks VALUES (4, 19.151, 39.044, 2, 'converged')`,
	}
	for _, s := range stmts {
		if _, err := legacy.Exec(s); err != nil {
			log.Fatal(err)
		}
	}

	// Expose it as RDF inside an SSDM instance.
	db := scisparql.Open()
	n, err := mediator.Import(legacy, mediator.Mapping{
		Table:         "tasks",
		Class:         rdf.IRI("http://ex/sim#Task"),
		SubjectPrefix: "http://ex/sim#task",
		KeyCols:       []string{"id"},
		PropNS:        "http://ex/sim#",
		Skip:          map[string]bool{"id": true},
	}, db.Dataset.Default)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mediated %d triples from the relational table\n\n", n)

	// Enrich with RDF-native metadata the relational schema never had...
	if _, err := db.Execute(`
PREFIX sim: <http://ex/sim#>
INSERT DATA { sim:task3 sim:note "rerun scheduled" }`); err != nil {
		log.Fatal(err)
	}

	// ...and query both together.
	res, err := db.Query(`
PREFIX sim: <http://ex/sim#>
SELECT ?task ?k1 ?note WHERE {
  ?task a sim:Task ; sim:k_1 ?k1 ; sim:outcome "diverged" .
  OPTIONAL { ?task sim:note ?note }
}`)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < res.Len(); i++ {
		fmt.Printf("diverged: %v (k_1=%v, note=%v)\n",
			res.Get(i, "task"), res.Get(i, "k1"), res.Get(i, "note"))
	}

	// Aggregate across realizations, as Q4 does for BISTAB.
	agg, err := db.Query(`
PREFIX sim: <http://ex/sim#>
SELECT ?k1 (COUNT(*) AS ?n)
       (GROUP_CONCAT(?out ; SEPARATOR = ",") AS ?outcomes)
WHERE { ?t a sim:Task ; sim:k_1 ?k1 ; sim:outcome ?out }
GROUP BY ?k1 ORDER BY ?k1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper parameter case:")
	for i := 0; i < agg.Len(); i++ {
		fmt.Printf("  k_1=%v: %v realizations, outcomes %v\n",
			agg.Get(i, "k1"), agg.Get(i, "n"), agg.Get(i, "outcomes"))
	}
}
