// Spatio-temporal gridded coverage: the scenario of the dissertation's
// fourth paper ("Spatio-Temporal Gridded Data Processing on the
// Semantic Web"). A temperature coverage is a 3-D array
// (time x lat x lon) stored in a chunked file back-end; RDF metadata
// describes the grid geometry, and SciSPARQL slices regions and time
// windows server-side.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"scisparql"
	"scisparql/internal/rdf"
	"scisparql/internal/storage/filestore"
)

const (
	nT   = 24 // hours
	nLat = 40
	nLon = 60
)

func main() {
	dir, err := os.MkdirTemp("", "geogrid")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := filestore.New(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize a diurnal temperature field: warmer at low latitudes,
	// peaking mid-afternoon, with longitudinal phase shift.
	data := make([]float64, nT*nLat*nLon)
	idx := 0
	for tt := 0; tt < nT; tt++ {
		for la := 0; la < nLat; la++ {
			for lo := 0; lo < nLon; lo++ {
				lat := 50.0 + float64(la)*0.5 // 50N..70N
				phase := 2 * math.Pi * (float64(tt) - 15 + float64(lo)/10) / 24
				data[idx] = 25 - (lat-50)*0.8 + 6*math.Cos(phase)
				idx++
			}
		}
	}
	cov, err := scisparql.NewFloatArray(data, nT, nLat, nLon)
	if err != nil {
		log.Fatal(err)
	}
	id, err := fs.Store(cov, 4096/8)
	if err != nil {
		log.Fatal(err)
	}

	// Metadata: the grid geometry as plain RDF, the coverage as a file
	// link.
	db := scisparql.Open()
	db.AttachBackend(fs)
	ttl := fmt.Sprintf(`
@prefix cov:  <http://example.org/coverage#> .
@prefix ssdm: <http://udbl.uu.se/ssdm#> .

cov:temp2026d1 a cov:Coverage ;
    cov:parameter "air_temperature" ;
    cov:unit "degC" ;
    cov:timeStart "2026-07-01T00:00:00Z"^^<http://www.w3.org/2001/XMLSchema#dateTime> ;
    cov:timeStepHours 1 ;
    cov:latStart 50.0 ; cov:latStep 0.5 ;
    cov:lonStart 10.0 ; cov:lonStep 0.25 ;
    cov:grid "%d"^^ssdm:fileLink .`, id)
	if err := db.LoadTurtle(ttl, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage %dx%dx%d (%0.1f MB) linked; %d metadata triples; bytes read so far: %d\n\n",
		nT, nLat, nLon, float64(len(data)*8)/(1<<20), db.Dataset.Default.Size(), fs.BytesRead)

	// A helper view: grid index for a latitude, defined in SciSPARQL
	// itself.
	if _, err := db.Execute(`
PREFIX cov: <http://example.org/coverage#>
DEFINE FUNCTION cov:latIndex(?c, ?lat) AS SELECT ?i WHERE {
  ?c cov:latStart ?l0 ; cov:latStep ?dl .
  BIND (round((?lat - ?l0) / ?dl) + 1 AS ?i)
}`); err != nil {
		log.Fatal(err)
	}

	// Noon temperature profile along one latitude band (time 13, lat
	// 60N): a 1-D slice of the 3-D grid, fetched lazily.
	res, err := db.Query(`
PREFIX cov: <http://example.org/coverage#>
SELECT ?param (aavg(?g[13, cov:latIndex(?c, 60.0), :]) AS ?meanAtNoon)
       (amax(?g[13, cov:latIndex(?c, 60.0), :]) AS ?maxAtNoon)
WHERE { ?c a cov:Coverage ; cov:parameter ?param ; cov:grid ?g }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v at 60N, 13:00: mean %v, max %v\n",
		res.Get(0, "param"), res.Get(0, "meanAtNoon"), res.Get(0, "maxAtNoon"))

	// Diurnal cycle at one grid point: slice across the time dimension.
	res2, err := db.Query(`
PREFIX cov: <http://example.org/coverage#>
SELECT (?g[:, 1, 1] AS ?series) (amin(?g[:, 1, 1]) AS ?night) (amax(?g[:, 1, 1]) AS ?day)
WHERE { ?c a cov:Coverage ; cov:grid ?g }`)
	if err != nil {
		log.Fatal(err)
	}
	s := res2.Get(0, "series").(rdf.Array)
	fmt.Printf("diurnal cycle at (50N, 10E): %d samples, min %v, max %v\n",
		s.A.Count(), res2.Get(0, "night"), res2.Get(0, "day"))

	fmt.Printf("\nbytes read from the %0.1f MB file: %d (lazy chunked access)\n",
		float64(len(data)*8)/(1<<20), fs.BytesRead)
}
