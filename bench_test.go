// Repository-level benchmarks: one bench per evaluation table/figure.
//
//	BenchmarkExp1_*  retrieval strategies x access patterns (§6.3.2)
//	BenchmarkExp2_*  IN-list buffer size sweep (§6.3.3)
//	BenchmarkExp3_*  chunk size sweep (§6.3.4)
//	BenchmarkExp4_*  BISTAB application queries (§6.4.5)
//	BenchmarkExp5_*  collection consolidation (§5.3.2)
//	BenchmarkExp6_*  client/server workflow round trips (chapter 7)
//	BenchmarkAblation* design-choice ablations (join ordering, SPD, AAPR)
//
// cmd/ssdm-bench prints the same experiments as formatted tables at
// larger scale; these benches make the numbers reproducible via
// `go test -bench . -benchmem`.
package scisparql

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"scisparql/internal/bistab"
	"scisparql/internal/core"
	"scisparql/internal/loader"
	"scisparql/internal/minibench"
	"scisparql/internal/rdf"
	"scisparql/internal/relstore"
	"scisparql/internal/server"
	"scisparql/internal/ssdmclient"
	"scisparql/internal/storage"
	"scisparql/internal/storage/filestore"
	"scisparql/internal/storage/relbackend"
)

// TestMain lets CI pin the fetch worker pool width for the whole
// benchmark run (SSDM_PARALLELISM=1 vs =N smoke both code paths: the
// sequential fast path and the worker pool).
func TestMain(m *testing.M) {
	if env := os.Getenv("SSDM_PARALLELISM"); env != "" {
		var width int
		if _, err := fmt.Sscanf(env, "%d", &width); err == nil {
			storage.SetParallelism(width)
		}
	}
	os.Exit(m.Run())
}

// benchRTT simulates the per-SQL-statement round trip; kept small so
// the full suite stays fast while preserving the strategy crossovers.
const benchRTT = 50 * time.Microsecond

// benchBandwidth simulates the result-transfer rate of the relational
// back-end (bytes/second).
const benchBandwidth = int64(200) << 20

func benchWorkload() minibench.Workload {
	return minibench.Workload{NumArrays: 2, Rows: 128, Cols: 128, ChunkBytes: 4096, Seed: 1}
}

type benchConfig struct {
	name    string
	backend storage.Backend
	rdb     *relstore.Database
}

func benchConfigs(b *testing.B) []benchConfig {
	b.Helper()
	out := []benchConfig{
		{name: "RESIDENT"},
		{name: "MEMORY", backend: storage.NewMemory()},
	}
	fs, err := filestore.New(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	out = append(out, benchConfig{name: "FILE", backend: fs})
	for _, strat := range []relbackend.Strategy{
		relbackend.StrategySingle, relbackend.StrategyBuffered, relbackend.StrategySPD,
	} {
		rdb := relstore.NewDatabase()
		rb, err := relbackend.New(rdb)
		if err != nil {
			b.Fatal(err)
		}
		rb.Strategy = strat
		rb.Aggregable = false
		out = append(out, benchConfig{name: strat.String(), backend: rb, rdb: rdb})
	}
	return out
}

// BenchmarkExp1 regenerates the retrieval-strategy comparison: every
// (configuration, pattern) cell is a sub-benchmark.
func BenchmarkExp1(b *testing.B) {
	w := benchWorkload()
	for _, cfg := range benchConfigs(b) {
		db, err := minibench.Build(w, cfg.backend)
		if err != nil {
			b.Fatal(err)
		}
		if cfg.rdb != nil {
			cfg.rdb.RoundTripDelay = benchRTT
			cfg.rdb.Bandwidth = benchBandwidth
		}
		for _, p := range minibench.AllPatterns {
			b.Run(cfg.name+"/"+p.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					loader.DropProxyCaches(db.Dataset.Default)
					if _, err := minibench.Run(db, p, w, 4, 1, int64(i)); err != nil {
						b.Fatal(err)
					}
				}
				if cfg.rdb != nil {
					st := cfg.rdb.StatsSnapshot()
					b.ReportMetric(float64(st.Statements)/float64(b.N), "stmts/op")
				}
			})
		}
	}
}

// BenchmarkExp2 regenerates the buffer-size sweep for the buffered
// IN-list strategy under scattered access.
func BenchmarkExp2(b *testing.B) {
	w := benchWorkload()
	for _, buf := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("buffer%d", buf), func(b *testing.B) {
			rdb := relstore.NewDatabase()
			rb, err := relbackend.New(rdb)
			if err != nil {
				b.Fatal(err)
			}
			rb.Strategy = relbackend.StrategyBuffered
			rb.BufferSize = buf
			rb.Aggregable = false
			db, err := minibench.Build(w, rb)
			if err != nil {
				b.Fatal(err)
			}
			rdb.RoundTripDelay = benchRTT
			rdb.Bandwidth = benchBandwidth
			rdb.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loader.DropProxyCaches(db.Dataset.Default)
				if _, err := minibench.Run(db, minibench.PatternRandom, w, 64, 1, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
			st := rdb.StatsSnapshot()
			b.ReportMetric(float64(st.Statements)/float64(b.N), "stmts/op")
		})
	}
}

// BenchmarkExp3 regenerates the chunk-size sweep on the SPD strategy.
func BenchmarkExp3(b *testing.B) {
	for _, chunkB := range []int{512, 4096, 32768} {
		for _, p := range []minibench.Pattern{minibench.PatternFull, minibench.PatternElement} {
			b.Run(fmt.Sprintf("chunk%d/%s", chunkB, p), func(b *testing.B) {
				w := benchWorkload()
				w.ChunkBytes = chunkB
				rdb := relstore.NewDatabase()
				rb, err := relbackend.New(rdb)
				if err != nil {
					b.Fatal(err)
				}
				rb.Strategy = relbackend.StrategySPD
				rb.Aggregable = false
				db, err := minibench.Build(w, rb)
				if err != nil {
					b.Fatal(err)
				}
				rdb.RoundTripDelay = benchRTT
				rdb.Bandwidth = benchBandwidth
				rdb.ResetStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					loader.DropProxyCaches(db.Dataset.Default)
					if _, err := minibench.Run(db, p, w, 0, 1, int64(i)); err != nil {
						b.Fatal(err)
					}
				}
				st := rdb.StatsSnapshot()
				b.ReportMetric(float64(st.BytesReturned)/float64(b.N), "bytes/op")
			})
		}
	}
}

// BenchmarkExp4 regenerates the BISTAB application-query timings per
// storage configuration.
func BenchmarkExp4(b *testing.B) {
	cfg := bistab.Config{Cases: 4, Realizations: 2, Steps: 1024, ChunkBytes: 4096, Seed: 7}
	backends := []struct {
		name string
		make func() storage.Backend
	}{
		{"RESIDENT", func() storage.Backend { return nil }},
		{"FILE", func() storage.Backend {
			fs, err := filestore.New(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			return fs
		}},
		{"SQL-SPD", func() storage.Backend {
			rdb := relstore.NewDatabase()
			rb, err := relbackend.New(rdb)
			if err != nil {
				b.Fatal(err)
			}
			rb.Strategy = relbackend.StrategySPD
			rdb.RoundTripDelay = benchRTT
			rdb.Bandwidth = benchBandwidth
			return rb
		}},
	}
	for _, be := range backends {
		db, err := bistab.Generate(cfg, be.make())
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range bistab.Queries(cfg) {
			b.Run(be.name+"/"+q.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					loader.DropProxyCaches(db.Dataset.Default)
					if _, err := db.Query(q.Text); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkExp5 regenerates the consolidation comparison: loading a
// collection-heavy document with consolidation on/off, and element
// access on the resulting graphs.
func BenchmarkExp5(b *testing.B) {
	doc := benchCollectionDoc(8, 16)
	for _, consolidate := range []bool{true, false} {
		name := "consolidated"
		if !consolidate {
			name = "raw"
		}
		b.Run("load/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.ConsolidateCollections = consolidate
				db := core.OpenWith(opts)
				if err := db.LoadTurtle(doc, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("element/"+name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.ConsolidateCollections = consolidate
			db := core.OpenWith(opts)
			if err := db.LoadTurtle(doc, ""); err != nil {
				b.Fatal(err)
			}
			var q string
			if consolidate {
				q = `PREFIX ex: <http://ex/> SELECT (?a[2,1] AS ?v) WHERE { ex:m1 ex:data ?a }`
			} else {
				q = `PREFIX ex: <http://ex/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?v WHERE { ex:m1 ex:data ?l . ?l rdf:rest ?r1 . ?r1 rdf:first ?row . ?row rdf:first ?v }`
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchCollectionDoc(n, side int) string {
	rng := rand.New(rand.NewSource(3))
	doc := "@prefix ex: <http://ex/> .\n"
	for i := 1; i <= n; i++ {
		doc += fmt.Sprintf("ex:m%d ex:data (", i)
		for r := 0; r < side; r++ {
			doc += "("
			for c := 0; c < side; c++ {
				if c > 0 {
					doc += " "
				}
				doc += fmt.Sprintf("%d", rng.Intn(1000))
			}
			doc += ")"
		}
		doc += ") .\n"
	}
	return doc
}

// BenchmarkExp6 regenerates the client/server workflow costs: array
// publication round trips and metadata queries returning slices.
func BenchmarkExp6(b *testing.B) {
	db := core.Open()
	db.AttachBackend(storage.NewMemory())
	srv := server.New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := ssdmclient.Connect(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()

	data := make([]float64, 4096)
	for i := range data {
		data[i] = float64(i)
	}
	a, err := NewFloatArray(data, len(data))
	if err != nil {
		b.Fatal(err)
	}

	b.Run("publish", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			subj := rdf.IRI(fmt.Sprintf("http://ex/run%d", i))
			if err := cl.AddArrayTriple(subj, "http://ex/signal", a); err != nil {
				b.Fatal(err)
			}
		}
	})
	if _, err := cl.Update(`PREFIX ex: <http://ex/> INSERT DATA { ex:run0 ex:tag "x" }`); err != nil {
		b.Fatal(err)
	}
	b.Run("query-slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := cl.Query(`PREFIX ex: <http://ex/>
SELECT (?s[1:16] AS ?head) WHERE { ex:run0 ex:tag "x" ; ex:signal ?s }`)
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() == 0 {
				b.Fatal("no rows")
			}
		}
	})
}

// BenchmarkAblationJoinOrder compares the cost-based join ordering
// against textual order on a selective BISTAB metadata join.
func BenchmarkAblationJoinOrder(b *testing.B) {
	cfg := bistab.Config{Cases: 16, Realizations: 8, Steps: 64, ChunkBytes: 4096, Seed: 7}
	db, err := bistab.Generate(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	// Pairs of tasks in the same parameter case: the textual order runs
	// a cross product before joining, the cost-based order stays
	// connected through bi:case.
	q := fmt.Sprintf(`PREFIX bi: <%s>
SELECT ?a ?b WHERE {
  ?a bi:k_1 ?k1 .
  ?b bi:k_4 ?k4 .
  ?a bi:case ?c .
  ?b bi:case ?c .
}`, bistab.NS)
	for _, disable := range []bool{false, true} {
		name := "cost-based"
		if disable {
			name = "textual"
		}
		b.Run(name, func(b *testing.B) {
			db.Engine.DisableJoinOrder = disable
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	db.Engine.DisableJoinOrder = false
}

// BenchmarkAblationSPD compares per-chunk statements against
// SPD-detected range statements for strided access.
func BenchmarkAblationSPD(b *testing.B) {
	w := benchWorkload()
	for _, strat := range []relbackend.Strategy{relbackend.StrategySingle, relbackend.StrategySPD} {
		b.Run(strat.String(), func(b *testing.B) {
			rdb := relstore.NewDatabase()
			rb, err := relbackend.New(rdb)
			if err != nil {
				b.Fatal(err)
			}
			rb.Strategy = strat
			rb.Aggregable = false
			db, err := minibench.Build(w, rb)
			if err != nil {
				b.Fatal(err)
			}
			rdb.RoundTripDelay = benchRTT
			rdb.Bandwidth = benchBandwidth
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loader.DropProxyCaches(db.Dataset.Default)
				if _, err := minibench.Run(db, minibench.PatternStride, w, 4, 1, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAAPR compares delegated (server-side) whole-array
// aggregation against client-side chunk transfer.
func BenchmarkAblationAAPR(b *testing.B) {
	w := benchWorkload()
	for _, delegated := range []bool{true, false} {
		name := "delegated"
		if !delegated {
			name = "client-side"
		}
		b.Run(name, func(b *testing.B) {
			rdb := relstore.NewDatabase()
			rb, err := relbackend.New(rdb)
			if err != nil {
				b.Fatal(err)
			}
			rb.Strategy = relbackend.StrategySPD
			rb.Aggregable = delegated
			db, err := minibench.Build(w, rb)
			if err != nil {
				b.Fatal(err)
			}
			rdb.RoundTripDelay = benchRTT
			rdb.Bandwidth = benchBandwidth
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				loader.DropProxyCaches(db.Dataset.Default)
				if _, err := minibench.Run(db, minibench.PatternFull, w, 0, 1, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoreQuery measures the plain metadata query path (no
// arrays) as an engine baseline.
func BenchmarkCoreQuery(b *testing.B) {
	db := core.Open()
	doc := "@prefix ex: <http://ex/> .\n"
	for i := 0; i < 1000; i++ {
		doc += fmt.Sprintf("ex:s%d a ex:Thing ; ex:val %d .\n", i, i%100)
	}
	if err := db.LoadTurtle(doc, ""); err != nil {
		b.Fatal(err)
	}
	q := `PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s a ex:Thing ; ex:val 42 }`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 10 {
			b.Fatalf("rows %d", res.Len())
		}
	}
}

// BenchmarkConcurrentQuery measures read throughput under parallel
// load: b.RunParallel issues the BenchmarkCoreQuery workload from
// GOMAXPROCS goroutines against one shared SSDM instance. With the
// reader-writer operation lock, read-only queries proceed in parallel
// and ns/op should drop as -cpu grows; under the old global mutex the
// numbers stay flat (see EXPERIMENTS.md for before/after).
func BenchmarkConcurrentQuery(b *testing.B) {
	db := core.Open()
	doc := "@prefix ex: <http://ex/> .\n"
	for i := 0; i < 1000; i++ {
		doc += fmt.Sprintf("ex:s%d a ex:Thing ; ex:val %d .\n", i, i%100)
	}
	if err := db.LoadTurtle(doc, ""); err != nil {
		b.Fatal(err)
	}
	q := `PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s a ex:Thing ; ex:val 42 }`
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := db.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() != 10 {
				b.Fatalf("rows %d", res.Len())
			}
		}
	})
}

// BenchmarkPlanCache measures the repeated-query path a server sees
// when clients replay hot query texts (the E6 round-trip shape): the
// same text submitted over and over against one SSDM instance. With
// the compiled-query cache this skips lex/parse/compile entirely after
// the first execution.
func BenchmarkPlanCache(b *testing.B) {
	db := core.Open()
	doc := "@prefix ex: <http://ex/> .\n"
	for i := 0; i < 1000; i++ {
		doc += fmt.Sprintf("ex:s%d a ex:Thing ; ex:val %d .\n", i, i%100)
	}
	if err := db.LoadTurtle(doc, ""); err != nil {
		b.Fatal(err)
	}
	q := `PREFIX ex: <http://ex/>
SELECT ?s ?w WHERE {
  ?s a ex:Thing ; ex:val 42 .
  OPTIONAL { ?s ex:weight ?w }
  FILTER(EXISTS { ?s a ex:Thing })
}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(q)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 10 {
			b.Fatalf("rows %d", res.Len())
		}
	}
}

// BenchmarkBoundProbe measures the fully-bound triple probe — the
// inner loop of every nested-loop join — at the graph level, with
// allocation counts.
func BenchmarkBoundProbe(b *testing.B) {
	g := rdf.NewGraph()
	for i := 0; i < 1000; i++ {
		g.Add(rdf.IRI(fmt.Sprintf("http://ex/s%d", i)), rdf.IRI("http://ex/p"), rdf.Integer(int64(i%100)))
	}
	s, _ := g.Lookup(rdf.IRI("http://ex/s500"))
	p, _ := g.Lookup(rdf.IRI("http://ex/p"))
	o, _ := g.Lookup(rdf.Integer(0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hit := false
		g.Match(s, p, o, func(rdf.Triple) bool {
			hit = true
			return true
		})
		if !hit {
			b.Fatal("probe missed")
		}
	}
}

// BenchmarkMatchFirstWildcard measures the ASK/LIMIT 1 shape: a
// wildcard enumeration stopped after the first triple. Before the
// batched enumeration this materialized the entire graph per call.
func BenchmarkMatchFirstWildcard(b *testing.B) {
	g := rdf.NewGraph()
	for i := 0; i < 5000; i++ {
		g.Add(rdf.IRI(fmt.Sprintf("http://ex/s%d", i)), rdf.IRI("http://ex/p"), rdf.Integer(int64(i)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		g.Match(0, 0, 0, func(rdf.Triple) bool {
			n++
			return false
		})
		if n != 1 {
			b.Fatalf("yielded %d", n)
		}
	}
}

// BenchmarkConcurrentClientQuery runs the same contention experiment
// over the wire: one server, one client connection per goroutine, so
// the per-connection goroutines in internal/server dispatch into SSDM
// concurrently.
func BenchmarkConcurrentClientQuery(b *testing.B) {
	db := core.Open()
	doc := "@prefix ex: <http://ex/> .\n"
	for i := 0; i < 1000; i++ {
		doc += fmt.Sprintf("ex:s%d a ex:Thing ; ex:val %d .\n", i, i%100)
	}
	if err := db.LoadTurtle(doc, ""); err != nil {
		b.Fatal(err)
	}
	srv := server.New(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	q := `PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s a ex:Thing ; ex:val 42 }`
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cl, err := ssdmclient.Connect(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		for pb.Next() {
			res, err := cl.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			if res.Len() != 10 {
				b.Fatalf("rows %d", res.Len())
			}
		}
	})
}
