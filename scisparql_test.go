package scisparql

import (
	"testing"
)

// The public-API tests exercise the library exactly as the examples
// and README do.

func TestPublicQuickstart(t *testing.T) {
	db := Open()
	err := db.LoadTurtle(`@prefix ex: <http://ex/> . ex:m ex:data ((1 2) (3 4)) .`, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`PREFIX ex: <http://ex/> SELECT (asum(?a[1,:]) AS ?row) WHERE { ex:m ex:data ?a }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Get(0, "row") != Integer(3) {
		t.Fatalf("%v", res.Rows)
	}
}

func TestPublicArrayConstruction(t *testing.T) {
	a, err := NewFloatArray([]float64{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	db := Open()
	db.Dataset.Default.Add(IRI("http://ex/s"), IRI("http://ex/p"), NewArrayTerm(a))
	res, err := db.Query(`SELECT (?a[2,2] AS ?v) WHERE { <http://ex/s> <http://ex/p> ?a }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(0, "v") != Float(4) {
		t.Fatalf("%v", res.Rows)
	}
	if _, err := NewIntArray([]int64{1, 2}, 3); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestPublicBackends(t *testing.T) {
	for _, mk := range []func(t *testing.T) Backend{
		func(*testing.T) Backend { return NewMemoryBackend() },
		func(t *testing.T) Backend {
			be, err := NewFileBackend(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return be
		},
		func(t *testing.T) Backend {
			be, err := NewRelationalBackend(StrategySPD)
			if err != nil {
				t.Fatal(err)
			}
			return be
		},
	} {
		db := Open()
		if err := db.LoadTurtle(`@prefix ex: <http://ex/> . ex:m ex:d (1 2 3 4 5) .`, ""); err != nil {
			t.Fatal(err)
		}
		db.AttachBackend(mk(t))
		if _, err := db.Externalize(); err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(`PREFIX ex: <http://ex/> SELECT (asum(?a) AS ?s) WHERE { ex:m ex:d ?a }`)
		if err != nil {
			t.Fatal(err)
		}
		if res.Get(0, "s") != Integer(15) {
			t.Fatalf("%v", res.Rows)
		}
	}
}

func TestPublicForeignFunction(t *testing.T) {
	db := Open()
	db.RegisterForeign("answer", 0, 0, func([]Term) (Term, error) {
		return Integer(42), nil
	})
	res, err := db.Query(`SELECT (answer() AS ?v) WHERE {}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(0, "v") != Integer(42) {
		t.Fatalf("%v", res.Rows)
	}
}

func TestPublicOptions(t *testing.T) {
	opts := DefaultOptions()
	opts.ConsolidateCollections = false
	db := OpenWith(opts)
	if err := db.LoadTurtle(`@prefix ex: <http://ex/> . ex:m ex:d (1 2) .`, ""); err != nil {
		t.Fatal(err)
	}
	if db.Dataset.Default.Size() == 1 {
		t.Fatal("consolidation should be off")
	}
}

func TestPublicRDFStorePersistence(t *testing.T) {
	// Persist a whole RDF-with-Arrays graph relationally, restore it
	// into a fresh database, and query it.
	store, err := NewRDFStore()
	if err != nil {
		t.Fatal(err)
	}
	db := Open()
	if err := db.LoadTurtle(`@prefix ex: <http://ex/> .
ex:run ex:label "x" ; ex:series (1 2 3 4) .`, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := store.SaveGraph(db.Dataset.Default, 2); err != nil {
		t.Fatal(err)
	}

	db2 := Open()
	if _, err := store.LoadGraph(db2.Dataset.Default); err != nil {
		t.Fatal(err)
	}
	res, err := db2.Query(`PREFIX ex: <http://ex/>
SELECT (asum(?s) AS ?total) WHERE { ?r ex:label "x" ; ex:series ?s }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(0, "total") != Integer(10) {
		t.Fatalf("%v", res.Rows)
	}
}
